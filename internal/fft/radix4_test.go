package fft

import "testing"

func TestRadix4MatchesPlan(t *testing.T) {
	for _, n := range []int{1, 4, 16, 64, 256, 1024, 4096} {
		p, err := NewRadix4Plan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSignal(n, int64(n)+5000)
		got := p.Forward(x)
		want := MustPlan(n).Forward(x)
		if d := MaxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: radix-4 differs from radix-2 by %g", n, d)
		}
	}
}

func TestRadix4RejectsNonPowersOfFour(t *testing.T) {
	for _, n := range []int{2, 8, 32, 100, 0} {
		if _, err := NewRadix4Plan(n); err == nil {
			t.Fatalf("NewRadix4Plan(%d) accepted", n)
		}
	}
}

func TestRadix4Stages(t *testing.T) {
	p, _ := NewRadix4Plan(4096)
	if p.Stages() != 6 {
		t.Fatalf("Stages = %d, want 6", p.Stages())
	}
	if p.Len() != 4096 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestRadix4InPlace(t *testing.T) {
	n := 256
	p, _ := NewRadix4Plan(n)
	x := randomSignal(n, 6000)
	want := p.Forward(x)
	buf := append([]complex128(nil), x...)
	p.Transform(buf, buf)
	//fftlint:ignore floatcmp in-place and out-of-place runs of one plan execute identical arithmetic
	if d := MaxAbsDiff(buf, want); d != 0 {
		t.Fatalf("in-place differs by %g", d)
	}
}

func BenchmarkRadix4_4096(b *testing.B) {
	p, _ := NewRadix4Plan(4096)
	x := randomSignal(4096, 1)
	dst := make([]complex128, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(dst, x)
	}
}

func BenchmarkRadix2_4096(b *testing.B) {
	p := MustPlan(4096)
	x := randomSignal(4096, 1)
	dst := make([]complex128, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(dst, x)
	}
}
