package fft

import "testing"

// Steady-state allocation pins for the hot transform paths. Every plan
// draws scratch from per-plan pools (or needs none at all), so after a
// warm-up call the AllocsPerRun budget is exactly zero — the property
// the serving layer's latency relies on, and the reason the plans stay
// safe to share through plancache.

func pinZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm the pools
	//fftlint:ignore floatcmp AllocsPerRun counts whole objects; the assertion is exactly zero
	if n := testing.AllocsPerRun(20, fn); n != 0 {
		// A GC cycle inside the measured window empties the scratch
		// pools (and the race-mode runtime sheds sync.Pool puts), so a
		// buffer refills once — a one-off, not a leak. Retry once: a
		// real per-call allocation repeats in every run and still
		// fails.
		//fftlint:ignore floatcmp see above
		if n = testing.AllocsPerRun(20, fn); n != 0 {
			t.Fatalf("%s: %v allocs/op, want 0", name, n)
		}
	}
}

func TestTransformZeroAllocs(t *testing.T) {
	p := MustPlan(4096)
	x := randomSignal(4096, 1)
	dst := make([]complex128, 4096)
	pinZeroAllocs(t, "Plan.Transform", func() { p.Transform(dst, x) })
	pinZeroAllocs(t, "Plan.Inverse", func() { p.Inverse(dst, x) })
	pinZeroAllocs(t, "Plan.TransformNoReorder", func() { p.TransformNoReorder(dst, x) })
}

func TestFourStepZeroAllocs(t *testing.T) {
	n := 1 << 12
	p := MustPlan(n)
	four, err := newFourStepPlan(n, p.log2n)
	if err != nil {
		t.Fatal(err)
	}
	p.four = four
	x := randomSignal(n, 2)
	dst := make([]complex128, n)
	pinZeroAllocs(t, "fourStep.Transform", func() { p.Transform(dst, x) })
}

func TestAnyPlanZeroAllocs(t *testing.T) {
	p, err := NewAnyPlan(1000) // non-power-of-two: the Bluestein path
	if err != nil {
		t.Fatal(err)
	}
	x := randomSignal(1000, 3)
	dst := make([]complex128, 1000)
	pinZeroAllocs(t, "AnyPlan.Transform", func() { p.Transform(dst, x) })
	pinZeroAllocs(t, "AnyPlan.Inverse", func() { p.Inverse(dst, x) })
}

func TestRealPlanZeroAllocs(t *testing.T) {
	p, err := NewRealPlan(4096)
	if err != nil {
		t.Fatal(err)
	}
	x := randomReal(4096, 4)
	spec := make([]complex128, p.SpectrumLen())
	out := make([]float64, 4096)
	pinZeroAllocs(t, "RealPlan.ForwardInto", func() { p.ForwardInto(spec, x) })
	pinZeroAllocs(t, "RealPlan.InverseInto", func() { p.InverseInto(out, spec) })
}

func TestPlan2DZeroAllocs(t *testing.T) {
	p, err := NewPlan2D(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	x := randomSignal(64*32, 5)
	dst := make([]complex128, 64*32)
	pinZeroAllocs(t, "Plan2D.Transform", func() { p.Transform(dst, x) })
	pinZeroAllocs(t, "Plan2D.Inverse", func() { p.Inverse(dst, x) })
}

func TestDCTZeroAllocs(t *testing.T) {
	p, err := NewDCTPlan(1024)
	if err != nil {
		t.Fatal(err)
	}
	x := randomReal(1024, 6)
	dst := make([]float64, 1024)
	pinZeroAllocs(t, "DCTPlan.Transform", func() { p.Transform(dst, x) })
	pinZeroAllocs(t, "DCTPlan.Inverse", func() { p.Inverse(dst, x) })
}
