package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"repro/internal/bits"
)

// AnyPlan computes DFTs of arbitrary length (not only powers of two)
// using Bluestein's chirp-z algorithm: the length-n DFT is re-expressed
// as a linear convolution with a chirp sequence, which is evaluated by a
// zero-padded power-of-two transform of length m >= 2n-1. Power-of-two
// lengths delegate to the ordinary Plan. An AnyPlan is safe for
// concurrent use: the only mutable state is the scratch pool, which
// hands each caller its own convolution buffer, so steady-state
// transforms allocate nothing.
type AnyPlan struct {
	n int

	// pow2 is non-nil when n is a power of two and the plan delegates.
	pow2 *Plan

	// Bluestein state (nil when pow2 is set).
	m     int
	inner *Plan
	// chirp[j] = exp(-i*pi*j^2/n) for j in [0, n)
	chirp []complex128
	// fh is the inner FFT of the chirp filter h[j] = conj(chirp[|j|]).
	fh []complex128
	// scratch pools the m-length convolution buffer.
	scratch sync.Pool
}

// NewAnyPlan creates a DFT plan for any length n >= 1.
func NewAnyPlan(n int) (*AnyPlan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: length %d < 1", n)
	}
	if bits.IsPow2(n) {
		p, err := NewPlan(n)
		if err != nil {
			return nil, err
		}
		return &AnyPlan{n: n, pow2: p}, nil
	}
	m := 1 << uint(bits.CeilLog2(2*n-1))
	inner, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	p := &AnyPlan{n: n, m: m, inner: inner}
	p.chirp = make([]complex128, n)
	for j := 0; j < n; j++ {
		// Reduce j^2 modulo 2n before forming the angle so that very
		// long transforms do not lose precision to huge arguments.
		q := (j * j) % (2 * n)
		angle := -math.Pi * float64(q) / float64(n)
		p.chirp[j] = cmplx.Exp(complex(0, angle))
	}
	h := make([]complex128, m)
	for j := 0; j < n; j++ {
		c := cmplx.Conj(p.chirp[j])
		h[j] = c
		if j > 0 {
			h[m-j] = c
		}
	}
	p.fh = make([]complex128, m)
	inner.Transform(p.fh, h)
	p.scratch.New = func() any {
		b := make([]complex128, m)
		return &b
	}
	return p, nil
}

// Len returns the transform length.
func (p *AnyPlan) Len() int { return p.n }

// Transform computes the forward DFT of src into dst (may alias):
// dst[k] = sum_j src[j] * exp(-2*pi*i*j*k/n).
func (p *AnyPlan) Transform(dst, src []complex128) {
	if len(src) != p.n || len(dst) != p.n {
		panic(fmt.Sprintf("fft: AnyPlan length mismatch (%d, %d) vs %d", len(dst), len(src), p.n))
	}
	if p.pow2 != nil {
		p.pow2.Transform(dst, src)
		return
	}
	//fftlint:ignore hotalloc pool.Get's New path allocates once per buffer, then reuses
	ap := p.scratch.Get().(*[]complex128)
	a := *ap
	for j := 0; j < p.n; j++ {
		a[j] = src[j] * p.chirp[j]
	}
	// The pooled buffer comes back with the previous call's tail; the
	// convolution needs the padding region zeroed every time.
	for j := p.n; j < p.m; j++ {
		a[j] = 0
	}
	p.inner.Transform(a, a)
	for i := range a {
		a[i] *= p.fh[i]
	}
	p.inner.Inverse(a, a)
	for k := 0; k < p.n; k++ {
		dst[k] = a[k] * p.chirp[k]
	}
	p.scratch.Put(ap)
}

// Inverse computes the inverse DFT of src into dst (may alias).
func (p *AnyPlan) Inverse(dst, src []complex128) {
	if len(src) != p.n || len(dst) != p.n {
		panic(fmt.Sprintf("fft: AnyPlan length mismatch (%d, %d) vs %d", len(dst), len(src), p.n))
	}
	if p.pow2 != nil {
		p.pow2.Inverse(dst, src)
		return
	}
	// IDFT(x) = conj(DFT(conj(x)))/n, conjugating through dst so no
	// extra n-length buffer is needed (dst may alias src, and Transform
	// tolerates aliased arguments).
	for i, v := range src {
		dst[i] = cmplx.Conj(v)
	}
	p.Transform(dst, dst)
	scale := complex(1/float64(p.n), 0)
	for i, v := range dst {
		dst[i] = cmplx.Conj(v) * scale
	}
}

// Forward is a convenience wrapper allocating the output slice.
func (p *AnyPlan) Forward(src []complex128) []complex128 {
	dst := make([]complex128, p.n)
	p.Transform(dst, src)
	return dst
}

// Backward is a convenience wrapper allocating the output slice.
func (p *AnyPlan) Backward(src []complex128) []complex128 {
	dst := make([]complex128, p.n)
	p.Inverse(dst, src)
	return dst
}
