package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestAnyPlanMatchesDFT(t *testing.T) {
	// Primes, prime powers, highly composite, and power-of-two lengths.
	for _, n := range []int{1, 2, 3, 5, 7, 12, 17, 31, 60, 97, 128, 243, 1000} {
		p, err := NewAnyPlan(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p.Len() != n {
			t.Fatalf("Len = %d", p.Len())
		}
		x := randomSignal(n, int64(n)+500)
		got := p.Forward(x)
		want := DFT(x)
		if d := MaxAbsDiff(got, want); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: Bluestein differs from DFT by %g", n, d)
		}
	}
}

func TestAnyPlanInverseRoundTrip(t *testing.T) {
	for _, n := range []int{3, 17, 100, 255, 256} {
		p, err := NewAnyPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSignal(n, int64(n)+600)
		y := p.Backward(p.Forward(x))
		if d := MaxAbsDiff(x, y); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: round trip differs by %g", n, d)
		}
	}
}

func TestAnyPlanPow2Delegates(t *testing.T) {
	p, err := NewAnyPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	x := randomSignal(64, 700)
	//fftlint:ignore floatcmp AnyPlan must dispatch to the radix-2 plan at powers of two; bit-equality pins the dispatch
	if d := MaxAbsDiff(p.Forward(x), MustPlan(64).Forward(x)); d != 0 {
		t.Fatalf("power-of-two AnyPlan differs from Plan by %g", d)
	}
}

func TestAnyPlanRejectsBadLength(t *testing.T) {
	if _, err := NewAnyPlan(0); err == nil {
		t.Fatal("length 0 accepted")
	}
	if _, err := NewAnyPlan(-5); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestAnyPlanPanicsOnLengthMismatch(t *testing.T) {
	p, _ := NewAnyPlan(5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched slice")
		}
	}()
	p.Transform(make([]complex128, 5), make([]complex128, 4))
}

func TestAnyPlanSinusoidPrimeLength(t *testing.T) {
	n := 101 // prime
	p, _ := NewAnyPlan(n)
	freq := 13
	x := make([]complex128, n)
	for i := range x {
		angle := 2 * math.Pi * float64(freq) * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, angle))
	}
	y := p.Forward(x)
	for k := range y {
		want := 0.0
		if k == freq {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(y[k])-want) > 1e-7 {
			t.Fatalf("bin %d magnitude %g, want %g", k, cmplx.Abs(y[k]), want)
		}
	}
}

func TestAnyPlanLargePrimePrecision(t *testing.T) {
	// The j^2 mod 2n angle reduction keeps large transforms accurate.
	n := 4999
	p, err := NewAnyPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := randomSignal(n, 800)
	y := p.Backward(p.Forward(x))
	if d := MaxAbsDiff(x, y); d > 1e-6 {
		t.Fatalf("large prime round trip differs by %g", d)
	}
}

func BenchmarkAnyPlanPrime1009(b *testing.B) {
	p, _ := NewAnyPlan(1009)
	x := randomSignal(1009, 1)
	dst := make([]complex128, 1009)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(dst, x)
	}
}
