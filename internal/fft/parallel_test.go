package fft

import "testing"

func TestTransformParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{64, 4096, 16384} {
		p := MustPlan(n)
		x := randomSignal(n, int64(n)+7000)
		want := make([]complex128, n)
		p.TransformDIF(want, x)
		fast := p.Forward(x)
		for _, workers := range []int{0, 1, 2, 7, 16} {
			dst := make([]complex128, n)
			p.TransformParallel(dst, x, workers)
			//fftlint:ignore floatcmp TransformParallel documents bit-identical results to TransformDIF; bit-equality is the contract
			if d := MaxAbsDiff(dst, want); d != 0 {
				t.Fatalf("n=%d workers=%d: parallel differs from DIF schedule by %g", n, workers, d)
			}
			if d := MaxAbsDiff(dst, fast); d > tol(n) {
				t.Fatalf("n=%d workers=%d: parallel differs from Transform by %g", n, workers, d)
			}
		}
	}
}

func TestTransformParallelInPlace(t *testing.T) {
	n := 8192
	p := MustPlan(n)
	x := randomSignal(n, 7100)
	want := make([]complex128, n)
	p.TransformDIF(want, x)
	buf := append([]complex128(nil), x...)
	p.TransformParallel(buf, buf, 8)
	//fftlint:ignore floatcmp TransformParallel documents bit-identical results to TransformDIF; bit-equality is the contract
	if d := MaxAbsDiff(buf, want); d != 0 {
		t.Fatalf("in-place parallel differs by %g", d)
	}
}

func BenchmarkTransformSerial64K(b *testing.B) {
	p := MustPlan(1 << 16)
	x := randomSignal(1<<16, 1)
	dst := make([]complex128, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(dst, x)
	}
}

func BenchmarkTransformParallel64K(b *testing.B) {
	p := MustPlan(1 << 16)
	x := randomSignal(1<<16, 1)
	dst := make([]complex128, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TransformParallel(dst, x, 0)
	}
}
