package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func tol(n int) float64 { return 1e-9 * float64(n) }

func TestNewPlanRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) accepted", n)
		}
	}
}

func TestMustPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPlan(3) did not panic")
		}
	}()
	MustPlan(3)
}

func TestTransformMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		p := MustPlan(n)
		x := randomSignal(n, int64(n))
		got := p.Forward(x)
		want := DFT(x)
		if d := MaxAbsDiff(got, want); d > tol(n) {
			t.Errorf("n=%d: max diff vs DFT = %g", n, d)
		}
	}
}

func TestTransformMatchesRecursive(t *testing.T) {
	for _, n := range []int{2, 8, 128, 512} {
		p := MustPlan(n)
		x := randomSignal(n, int64(n)+100)
		if d := MaxAbsDiff(p.Forward(x), Recursive(x)); d > tol(n) {
			t.Errorf("n=%d: planned and recursive disagree by %g", n, d)
		}
	}
}

func TestRecursiveMatchesDFT(t *testing.T) {
	x := randomSignal(64, 7)
	if d := MaxAbsDiff(Recursive(x), DFT(x)); d > tol(64) {
		t.Fatalf("recursive vs DFT diff %g", d)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 16, 256, 4096} {
		p := MustPlan(n)
		x := randomSignal(n, int64(n)+200)
		y := p.Backward(p.Forward(x))
		if d := MaxAbsDiff(x, y); d > tol(n) {
			t.Errorf("n=%d: inverse round trip diff %g", n, d)
		}
	}
}

func TestIDFTMatchesInverse(t *testing.T) {
	n := 64
	p := MustPlan(n)
	x := randomSignal(n, 11)
	if d := MaxAbsDiff(p.Backward(x), IDFT(x)); d > tol(n) {
		t.Fatalf("plan inverse vs IDFT diff %g", d)
	}
}

func TestImpulseTransformsToConstant(t *testing.T) {
	n := 32
	p := MustPlan(n)
	x := make([]complex128, n)
	x[0] = 1
	y := p.Forward(x)
	for k, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse bin %d = %v, want 1", k, v)
		}
	}
}

func TestSinusoidConcentratesInOneBin(t *testing.T) {
	n := 256
	p := MustPlan(n)
	freq := 37
	x := make([]complex128, n)
	for i := range x {
		angle := 2 * math.Pi * float64(freq) * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, angle))
	}
	y := p.Forward(x)
	for k, v := range y {
		want := 0.0
		if k == freq {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-8 {
			t.Fatalf("bin %d = %v, want magnitude %g", k, v, want)
		}
	}
}

func TestLinearity(t *testing.T) {
	n := 128
	p := MustPlan(n)
	x := randomSignal(n, 21)
	y := randomSignal(n, 22)
	a, b := complex(2.5, -1), complex(0, 3)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = a*x[i] + b*y[i]
	}
	lhs := p.Forward(sum)
	fx, fy := p.Forward(x), p.Forward(y)
	rhs := make([]complex128, n)
	for i := range rhs {
		rhs[i] = a*fx[i] + b*fy[i]
	}
	if d := MaxAbsDiff(lhs, rhs); d > tol(n) {
		t.Fatalf("linearity violated by %g", d)
	}
}

func TestParseval(t *testing.T) {
	n := 512
	p := MustPlan(n)
	x := randomSignal(n, 31)
	y := p.Forward(x)
	var ex, ey float64
	for i := range x {
		ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		ey += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
	}
	ey /= float64(n)
	if math.Abs(ex-ey) > 1e-7*ex {
		t.Fatalf("Parseval violated: time %g vs freq %g", ex, ey)
	}
}

func TestTimeShiftPhaseRamp(t *testing.T) {
	// Shifting the signal circularly by s multiplies bin k by W_n^{ks}.
	n := 64
	p := MustPlan(n)
	x := randomSignal(n, 41)
	s := 5
	shifted := make([]complex128, n)
	for i := range x {
		shifted[i] = x[(i-s+n)%n]
	}
	fx := p.Forward(x)
	fs := p.Forward(shifted)
	for k := range fx {
		want := fx[k] * p.Twiddle(k*s)
		if cmplx.Abs(fs[k]-want) > tol(n) {
			t.Fatalf("shift theorem violated at bin %d", k)
		}
	}
}

func TestTransformNoReorderIsBitReversedSpectrum(t *testing.T) {
	n := 128
	p := MustPlan(n)
	x := randomSignal(n, 51)
	natural := p.Forward(x)
	raw := make([]complex128, n)
	p.TransformNoReorder(raw, x)
	p.BitReverseInPlace(raw)
	if d := MaxAbsDiff(raw, natural); d > tol(n) {
		t.Fatalf("no-reorder + bit reverse differs from Transform by %g", d)
	}
}

func TestTransformInPlaceAliasing(t *testing.T) {
	n := 64
	p := MustPlan(n)
	x := randomSignal(n, 61)
	want := p.Forward(x)
	buf := append([]complex128(nil), x...)
	p.Transform(buf, buf)
	if d := MaxAbsDiff(buf, want); d > tol(n) {
		t.Fatalf("in-place transform differs by %g", d)
	}
}

func TestTwiddleSymmetry(t *testing.T) {
	p := MustPlan(16)
	for k := 0; k < 64; k++ {
		want := cmplx.Exp(complex(0, -2*math.Pi*float64(k%16)/16))
		if cmplx.Abs(p.Twiddle(k)-want) > 1e-12 {
			t.Fatalf("Twiddle(%d) = %v, want %v", k, p.Twiddle(k), want)
		}
	}
}

func TestButterflyAlgebra(t *testing.T) {
	a, b := complex(1.0, 2.0), complex(-3.0, 0.5)
	w := complex(0, 1)
	up, lo := Butterfly(a, b, w)
	//fftlint:ignore floatcmp Butterfly is defined as exactly this expression; bit-equality pins the algebra
	if up != a+b {
		t.Fatal("upper output wrong")
	}
	//fftlint:ignore floatcmp Butterfly is defined as exactly this expression; bit-equality pins the algebra
	if lo != (a-b)*w {
		t.Fatal("lower output wrong")
	}
}

func TestDIFTwiddleExponentSchedule(t *testing.T) {
	// For n=8: stage 2 pairs (j, j+4) with exponent j for j in 0..3;
	// stage 1 pairs within halves with exponent 2*(j&1); stage 0 uses 0.
	p := MustPlan(8)
	if p.DIFTwiddleExponent(2, 3) != 3 {
		t.Fatal("stage 2 exponent wrong")
	}
	if p.DIFTwiddleExponent(1, 5) != 2 {
		t.Fatal("stage 1 exponent wrong")
	}
	if p.DIFTwiddleExponent(0, 6) != 0 {
		t.Fatal("stage 0 exponent wrong")
	}
}

func TestDIFTwiddleExponentPanicsOutOfRange(t *testing.T) {
	p := MustPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range stage")
		}
	}()
	p.DIFTwiddleExponent(3, 0)
}

func TestRealForwardMatchesComplex(t *testing.T) {
	n := 128
	p := MustPlan(n)
	rng := rand.New(rand.NewSource(71))
	x := make([]float64, n)
	cx := make([]complex128, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		cx[i] = complex(x[i], 0)
	}
	spec := p.RealForward(x)
	full := p.Forward(cx)
	for k := range spec {
		if cmplx.Abs(spec[k]-full[k]) > tol(n) {
			t.Fatalf("real spectrum bin %d differs", k)
		}
	}
}

func TestRealRoundTrip(t *testing.T) {
	n := 256
	p := MustPlan(n)
	rng := rand.New(rand.NewSource(72))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := p.RealInverse(p.RealForward(x))
	for i := range x {
		if math.Abs(x[i]-y[i]) > tol(n) {
			t.Fatalf("real round trip differs at %d", i)
		}
	}
}

func TestPowerSpectrumPeak(t *testing.T) {
	n := 1024
	p := MustPlan(n)
	x := make([]float64, n)
	freq := 100
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(freq) * float64(i) / float64(n))
	}
	ps := p.PowerSpectrum(x)
	best := 0
	for k := range ps {
		if ps[k] > ps[best] {
			best = k
		}
	}
	if best != freq {
		t.Fatalf("power spectrum peak at %d, want %d", best, freq)
	}
}

// direct2D is the O(n^2) 2D DFT oracle.
func direct2D(x []complex128, rows, cols int) []complex128 {
	want := make([]complex128, rows*cols)
	for kr := 0; kr < rows; kr++ {
		for kc := 0; kc < cols; kc++ {
			var sum complex128
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					angle := -2 * math.Pi * (float64(kr*r)/float64(rows) + float64(kc*c)/float64(cols))
					sum += x[r*cols+c] * cmplx.Exp(complex(0, angle))
				}
			}
			want[kr*cols+kc] = sum
		}
	}
	return want
}

func TestPlan2DMatchesDirect2D(t *testing.T) {
	// 8x16 exercises the pure power-of-two path, 12x20 the Bluestein
	// fallback on both sides; both shapes are the satellite property
	// check that also pins the pencil decomposition (internal/pencil
	// asserts bit-identity against Plan2D on top of this oracle).
	for _, shape := range [][2]int{{8, 16}, {12, 20}} {
		rows, cols := shape[0], shape[1]
		p, err := NewPlan2D(rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSignal(rows*cols, 81)
		got := make([]complex128, rows*cols)
		p.Transform(got, x)
		if d := MaxAbsDiff(got, direct2D(x, rows, cols)); d > 1e-7 {
			t.Fatalf("%dx%d transform differs from direct by %g", rows, cols, d)
		}
		p.Inverse(got, got)
		if d := MaxAbsDiff(got, x); d > 1e-9 {
			t.Fatalf("%dx%d round trip diff %g", rows, cols, d)
		}
	}
}

func TestPlan2DSlabStagesMatchWhole(t *testing.T) {
	// Running the row stage slab-by-slab and the column stage
	// band-by-band must reproduce Transform bit for bit: the pencil
	// decomposition's correctness rests on this equality.
	rows, cols := 12, 20
	p, err := NewPlan2D(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	x := randomSignal(rows*cols, 83)
	want := make([]complex128, rows*cols)
	p.Transform(want, x)

	got := make([]complex128, rows*cols)
	copy(got, x)
	// Row stage in two uneven slabs.
	p.TransformRows(got[:5*cols], false)
	p.TransformRows(got[5*cols:], false)
	// Column stage gathered band by band out of the row-major array,
	// exactly as the distributed transpose delivers it.
	colT, err := NewTransformer(rows)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]complex128, rows)
	for colLo := 0; colLo < cols; colLo += 7 {
		bw := cols - colLo
		if bw > 7 {
			bw = 7
		}
		band := make([]complex128, rows*bw)
		for r := 0; r < rows; r++ {
			copy(band[r*bw:(r+1)*bw], got[r*cols+colLo:r*cols+colLo+bw])
		}
		TransformColumns(colT, band, rows, bw, false, scratch)
		for r := 0; r < rows; r++ {
			copy(got[r*cols+colLo:r*cols+colLo+bw], band[r*bw:(r+1)*bw])
		}
	}
	for i := range got {
		//fftlint:ignore floatcmp the slab stages must be bit-identical to the whole-array path
		if got[i] != want[i] {
			t.Fatalf("slab-staged output differs from Transform at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestPlan3DMatchesDirect3D(t *testing.T) {
	nx, ny, nz := 4, 6, 8
	p, err := NewPlan3D(nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	x := randomSignal(nx*ny*nz, 87)
	got := make([]complex128, len(x))
	p.Transform(got, x)
	want := make([]complex128, len(x))
	for kx := 0; kx < nx; kx++ {
		for ky := 0; ky < ny; ky++ {
			for kz := 0; kz < nz; kz++ {
				var sum complex128
				for ix := 0; ix < nx; ix++ {
					for iy := 0; iy < ny; iy++ {
						for iz := 0; iz < nz; iz++ {
							angle := -2 * math.Pi * (float64(kx*ix)/float64(nx) + float64(ky*iy)/float64(ny) + float64(kz*iz)/float64(nz))
							sum += x[(ix*ny+iy)*nz+iz] * cmplx.Exp(complex(0, angle))
						}
					}
				}
				want[(kx*ny+ky)*nz+kz] = sum
			}
		}
	}
	if d := MaxAbsDiff(got, want); d > 1e-7 {
		t.Fatalf("3D transform differs from direct by %g", d)
	}
	p.Inverse(got, got)
	if d := MaxAbsDiff(got, x); d > 1e-9 {
		t.Fatalf("3D round trip diff %g", d)
	}
}

func TestPlan2DRoundTrip(t *testing.T) {
	p, err := NewPlan2D(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := randomSignal(128, 91)
	y := make([]complex128, 128)
	p.Transform(y, x)
	p.Inverse(y, y)
	if d := MaxAbsDiff(x, y); d > 1e-9 {
		t.Fatalf("2D round trip diff %g", d)
	}
	if r, c := p.Size(); r != 16 || c != 8 {
		t.Fatal("Size wrong")
	}
}

func TestPlan2DRejectsBadShapes(t *testing.T) {
	// Non-power-of-two sides are legal since the Bluestein fallback;
	// only non-positive sides are rejected.
	if _, err := NewPlan2D(0, 8); err == nil {
		t.Fatal("rows=0 accepted")
	}
	if _, err := NewPlan2D(8, -1); err == nil {
		t.Fatal("cols=-1 accepted")
	}
	if _, err := NewPlan2D(3, 8); err != nil {
		t.Fatalf("rows=3 rejected: %v", err)
	}
	if _, err := NewPlan3D(2, 0, 4); err == nil {
		t.Fatal("ny=0 accepted")
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	// A Plan must be usable from many goroutines at once.
	n := 256
	p := MustPlan(n)
	x := randomSignal(n, 101)
	want := p.Forward(x)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				if d := MaxAbsDiff(p.Forward(x), want); d > 0 {
					done <- errResult(d)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errResult float64

func (e errResult) Error() string { return "concurrent transform mismatch" }

func BenchmarkFFT1024(b *testing.B) {
	p := MustPlan(1024)
	x := randomSignal(1024, 1)
	dst := make([]complex128, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(dst, x)
	}
}

func BenchmarkFFT4096(b *testing.B) {
	p := MustPlan(4096)
	x := randomSignal(4096, 1)
	dst := make([]complex128, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(dst, x)
	}
}

func BenchmarkDFT256(b *testing.B) {
	x := randomSignal(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DFT(x)
	}
}
