package fft

import (
	"math/cmplx"
	"testing"
)

// TestFourStepMatchesSplitRadix cross-checks the four-step kernel
// against the monolithic split-radix network at sizes covering both a
// square factorization (even log2 n) and a rectangular one (odd
// log2 n), including sizes below the automatic threshold by building
// the decomposition directly.
func TestFourStepMatchesSplitRadix(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 11, 1 << 15, 1 << 16} {
		p := MustPlan(n)
		four := p.four
		if four == nil {
			var err error
			four, err = newFourStepPlan(n, p.log2n)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
		x := randomSignal(n, int64(n)+9000)
		got := append([]complex128(nil), x...)
		four.transform(p, got)
		want := append([]complex128(nil), x...)
		p.forwardSplitRadix(want)
		p.BitReverseInPlace(want)
		if d := MaxAbsDiff(got, want); d > tol(n) {
			t.Fatalf("n=%d (n1=%d n2=%d): four-step differs from split-radix by %g", n, four.n1, four.n2, d)
		}
	}
}

// TestFourStepMatchesDFT pins the four-step kernel against the O(n^2)
// oracle at a size small enough for the oracle to be affordable.
func TestFourStepMatchesDFT(t *testing.T) {
	for _, n := range []int{256, 512} {
		p := MustPlan(n)
		four, err := newFourStepPlan(n, p.log2n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := randomSignal(n, int64(n)+9100)
		got := append([]complex128(nil), x...)
		four.transform(p, got)
		want := DFT(x)
		if d := MaxAbsDiff(got, want); d > tol(n) {
			t.Fatalf("n=%d: four-step differs from DFT by %g", n, d)
		}
	}
}

// TestTransformFourStepDispatch drives Plan.Transform/Inverse through
// the four-step dispatch path exactly as a plan of n >= fourStepMin
// would take it — building a plan of that size is too expensive for a
// unit test, so the decomposition is attached to a small plan instead —
// and checks the round trip plus the DC bin analytically.
func TestTransformFourStepDispatch(t *testing.T) {
	n := 1 << 12
	p := MustPlan(n)
	four, err := newFourStepPlan(n, p.log2n)
	if err != nil {
		t.Fatal(err)
	}
	p.four = four
	x := randomSignal(n, 9200)
	spec := make([]complex128, n)
	p.Transform(spec, x)
	// Spot-check bin 0 (the plain sum) against direct evaluation.
	var sum complex128
	for _, v := range x {
		sum += v
	}
	if d := cmplx.Abs(spec[0] - sum); d > tol(n) {
		t.Fatalf("DC bin differs from direct sum by %g", d)
	}
	back := make([]complex128, n)
	p.Inverse(back, spec)
	if d := MaxAbsDiff(back, x); d > tol(n) {
		t.Fatalf("round trip differs by %g", d)
	}
}
