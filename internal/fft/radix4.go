package fft

import (
	"fmt"

	"repro/internal/bits"
)

// Radix4Plan computes forward DFTs of length n = 4^k with the iterative
// radix-4 decimation-in-frequency algorithm. Radix-4 butterflies do the
// work of two radix-2 ranks with ~25% fewer complex multiplications
// (the factor-of-(-i) rotations are free), which is why machines whose
// PEs hold 4 samples prefer it; the communication schedule it induces is
// the same butterfly-exchange family, two bits per stage.
type Radix4Plan struct {
	n     int
	log4n int
	base  *Plan // shares twiddles and the bit-reversal helper
	rev   []int // precomputed base-4 digit reversal
}

// NewRadix4Plan creates a radix-4 plan for n = 4^k, k >= 0.
func NewRadix4Plan(n int) (*Radix4Plan, error) {
	if !bits.IsPow2(n) || bits.Log2(n)%2 != 0 {
		return nil, fmt.Errorf("fft: radix-4 length %d is not a power of four", n)
	}
	base, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	p := &Radix4Plan{n: n, log4n: bits.Log2(n) / 2, base: base}
	p.rev = make([]int, n)
	for i := range p.rev {
		p.rev[i] = bits.DigitReverse(i, 4, p.log4n)
	}
	return p, nil
}

// Len returns the transform length.
func (p *Radix4Plan) Len() int { return p.n }

// Stages returns log4(n).
func (p *Radix4Plan) Stages() int { return p.log4n }

// Transform computes the forward DFT of src into dst (may alias).
func (p *Radix4Plan) Transform(dst, src []complex128) {
	if len(src) != p.n || len(dst) != p.n {
		panic(fmt.Sprintf("fft: radix-4 length mismatch (%d,%d) vs %d", len(dst), len(src), p.n))
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	n := p.n
	// Radix-4 DIF: at each stage the vector splits into quarters; the
	// four outputs of each butterfly pick up twiddles W^0, W^q, W^2q,
	// W^3q where q is the intra-block offset scaled to the stage.
	for size := n; size >= 4; size /= 4 {
		quarter := size / 4
		tablestep := n / size
		for start := 0; start < n; start += size {
			for j := 0; j < quarter; j++ {
				i0 := start + j
				i1 := i0 + quarter
				i2 := i1 + quarter
				i3 := i2 + quarter
				a, b, c, d := dst[i0], dst[i1], dst[i2], dst[i3]
				// Radix-4 DIF butterfly with the -i rotation on the
				// "odd" leg:
				t0 := a + c
				t1 := a - c
				t2 := b + d
				t3 := mulNegI(b - d)
				k := j * tablestep
				dst[i0] = t0 + t2
				dst[i1] = (t1 + t3) * p.base.Twiddle(k)
				dst[i2] = (t0 - t2) * p.base.Twiddle(2*k)
				dst[i3] = (t1 - t3) * p.base.Twiddle(3*k)
			}
		}
	}
	p.digitReverse4(dst)
}

// mulNegI multiplies by -i without a complex multiplication.
func mulNegI(z complex128) complex128 {
	return complex(imag(z), -real(z))
}

// digitReverse4 permutes dst into base-4 digit-reversed order, the
// radix-4 analogue of the bit reversal.
func (p *Radix4Plan) digitReverse4(x []complex128) {
	for i, j := range p.rev {
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// Forward is a convenience wrapper allocating the output slice.
func (p *Radix4Plan) Forward(src []complex128) []complex128 {
	dst := make([]complex128, p.n)
	p.Transform(dst, src)
	return dst
}
