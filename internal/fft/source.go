package fft

// Source supplies transform plans. It is the plan-reuse hook for
// long-lived callers (servers, pipelines): a Source may hand out the
// same *Plan for repeated requests of one length, amortizing twiddle
// construction across transforms. Plans are read-only after creation,
// so sharing one Plan between goroutines is safe.
type Source interface {
	// Plan returns a plan for length n (a power of two).
	Plan(n int) (*Plan, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(n int) (*Plan, error)

// Plan calls f.
func (f SourceFunc) Plan(n int) (*Plan, error) { return f(n) }

// FreshSource returns a Source that builds a new Plan on every call —
// the no-reuse default used when no cache is configured.
func FreshSource() Source { return SourceFunc(NewPlan) }
