package fft

// Split-radix decimation-in-frequency kernel. Compared to the textbook
// radix-2 network (forwardDIF, the paper's Fig. 3 schedule) it fuses two
// radix-2 ranks into L-shaped butterflies, cutting the complex-multiply
// count by about a third and replacing the per-butterfly
// Twiddle(DIFTwiddleExponent(...)) calls with direct twiddle-table
// indexing. Like every DIF decomposition of the Cooley–Tukey family it
// leaves the spectrum in bit-reversed index order, so the existing
// precomputed-swap BitReverseInPlace finishes the transform and the
// TransformNoReorder contract ("spectrum in bit-reversed order") is
// unchanged.
//
// The recursion for a block of length L with quarter q = L/4 follows
// from splitting the DFT into even outputs and the two odd residue
// classes mod 4: with d0 = x[j] - x[j+L/2], d1 = x[j+q] - x[j+3q] and
// w = W_L = exp(-2*pi*i/L),
//
//	x[j]      <- x[j] + x[j+L/2]            (even half, recursed at L/2)
//	x[j+q]    <- x[j+q] + x[j+3q]
//	x[j+2q]   <- (d0 - i*d1) * w^j          (X[4m+1] block, recursed at q)
//	x[j+3q]   <- (d0 + i*d1) * w^(3j)       (X[4m+3] block, recursed at q)
//
// for j in [0, q). Blocks at or below srCutoff fall through to a tight
// radix-2 sweep (difBlock) — at small sizes the call overhead of further
// splitting costs more than the saved multiplies.

// srCutoff is the block length at or below which splitRadix stops
// recursing and runs the iterative radix-2 sweep instead.
const srCutoff = 32

// forwardSplitRadix runs the split-radix DIF butterfly network in place.
// On return the spectrum is in bit-reversed order, exactly like
// forwardDIF (the two differ only in rounding, not in output layout).
func (p *Plan) forwardSplitRadix(x []complex128) {
	if p.n < 2 {
		return
	}
	p.splitRadix(x, 1)
}

// splitRadix applies the split-radix DIF network to the sub-block x,
// whose global twiddle stride is st = n/len(x): the j-th butterfly of
// the block uses W_n^(j*st) = W_L^j.
func (p *Plan) splitRadix(x []complex128, st int) {
	l := len(x)
	if l <= srCutoff {
		p.difBlock(x, st)
		return
	}
	q := l >> 2
	tw := p.tw
	// j = 0: both twiddles are exactly 1.
	{
		a, b := x[0], x[q]
		c, d := x[2*q], x[3*q]
		x[0] = a + c
		x[q] = b + d
		d0 := a - c
		t := b - d
		t = complex(imag(t), -real(t)) // -i * d1
		x[2*q] = d0 + t
		x[3*q] = d0 - t
	}
	for j := 1; j < q; j++ {
		e1 := j * st // < n/4, in range for the half table
		e3 := 3 * e1 // < 3n/4, may need the W^(k+n/2) = -W^k fold
		w1 := tw[e1]
		var w3 complex128
		if e3 < len(tw) {
			w3 = tw[e3]
		} else {
			w3 = -tw[e3-len(tw)]
		}
		a, b := x[j], x[j+q]
		c, d := x[j+2*q], x[j+3*q]
		x[j] = a + c
		x[j+q] = b + d
		d0 := a - c
		t := b - d
		t = complex(imag(t), -real(t)) // -i * d1
		x[j+2*q] = (d0 + t) * w1
		x[j+3*q] = (d0 - t) * w3
	}
	p.splitRadix(x[:2*q], st*2)
	p.splitRadix(x[2*q:3*q], st*4)
	p.splitRadix(x[3*q:], st*4)
}

// difBlock runs the plain radix-2 DIF network on the sub-block x with
// global twiddle stride st, indexing the twiddle table directly instead
// of going through Twiddle(DIFTwiddleExponent(...)). Every exponent it
// forms is below n/2, so no symmetry fold is needed; the j = 0 column
// multiplies by tw[0], which is exactly 1+0i, so no branch is needed
// either.
func (p *Plan) difBlock(x []complex128, st int) {
	l := len(x)
	tw := p.tw
	for size := l; size >= 2; size >>= 1 {
		half := size >> 1
		step := st * (l / size)
		for s := 0; s < l; s += size {
			e := 0
			for j := s; j < s+half; j++ {
				a, b := x[j], x[j+half]
				x[j] = a + b
				x[j+half] = (a - b) * tw[e]
				e += step
			}
		}
	}
}
