package fft

import "sync"

// Cache-blocked four-step (a.k.a. six-step) decomposition for large
// transforms. A length-n transform with n = n1*n2 is computed as
//
//	transpose -> n2 contiguous length-n1 FFTs -> twiddle by W_n^(j2*k1)
//	          -> transpose -> n1 contiguous length-n2 FFTs -> transpose
//
// so every FFT the machine actually executes runs over a contiguous
// ~sqrt(n) block that fits in cache, and every non-contiguous access
// pattern is confined to the three transposes, which are cache-blocked.
// Output is in natural order, matching Transform's contract. The row
// transforms recurse through Plan.Transform, so a transform too large
// for one decomposition level simply decomposes again.

// fourStepMin is the transform length at which Plan switches from the
// monolithic split-radix network to the four-step decomposition. The
// recursive split-radix network is itself cache-oblivious (sub-blocks
// become cache-resident after the first few ranks), so the transposes
// only pay for themselves once the streaming ranks dominate: measured
// on the fftbench host the decomposition still lost 8% at 2^22 and
// first won (by 7%) at 2^23, so the switch sits there.
const fourStepMin = 1 << 23

// fourStepPlan holds the factorization state hung off a Plan when
// n >= fourStepMin. The scratch pool makes Transform allocation-free in
// steady state while staying safe for the shared plancache: concurrent
// transforms on one plan each draw their own buffer.
type fourStepPlan struct {
	n1, n2  int // n = n1*n2, both powers of two, n1 <= n2
	p1, p2  *Plan
	scratch sync.Pool // of *[]complex128 with length n
}

// newFourStepPlan factorizes n = n1*n2 with n1 = 2^floor(log2n/2).
func newFourStepPlan(n, log2n int) (*fourStepPlan, error) {
	n1 := 1 << uint(log2n/2)
	n2 := n / n1
	p1, err := NewPlan(n1)
	if err != nil {
		return nil, err
	}
	p2, err := NewPlan(n2)
	if err != nil {
		return nil, err
	}
	f := &fourStepPlan{n1: n1, n2: n2, p1: p1, p2: p2}
	f.scratch.New = func() any {
		b := make([]complex128, n)
		return &b
	}
	return f, nil
}

// transform computes the forward DFT of x in place, in natural order.
// p is the owning full-length plan, used only for its twiddle table.
func (f *fourStepPlan) transform(p *Plan, x []complex128) {
	//fftlint:ignore hotalloc pool.Get's New path allocates once per buffer, then reuses
	sp := f.scratch.Get().(*[]complex128)
	s := *sp
	n1, n2 := f.n1, f.n2
	// Step 1: s = transpose of x viewed as n1 x n2 (so s is n2 x n1 and
	// row j2 of s holds the decimated subsequence x[j2], x[j2+n2], ...).
	transposeBlocked(s, x, n1, n2)
	// Step 2: length-n1 FFT of each contiguous row of s.
	for r := 0; r < n2; r++ {
		row := s[r*n1 : (r+1)*n1]
		f.p1.Transform(row, row)
	}
	// Steps 3+4 fused: twiddle s[j2*n1+k1] by W_n^(j2*k1) while
	// transposing back into x, saving a full memory pass. Row k1 of x is
	// then contiguous in the second transform's input order.
	f.twiddleTranspose(p, x, s)
	// Step 5: length-n2 FFT of each contiguous row of x.
	for r := 0; r < n1; r++ {
		row := x[r*n2 : (r+1)*n2]
		f.p2.Transform(row, row)
	}
	// Step 6: x[k1*n2+k2] now holds X[k1 + n1*k2]; one last transpose
	// puts the spectrum in natural order — in place when the
	// factorization is square, via scratch otherwise.
	if n1 == n2 {
		transposeSquareInPlace(x, n1)
	} else {
		transposeBlocked(s, x, n1, n2)
		copy(x, s)
	}
	f.scratch.Put(sp)
}

// twiddleTranspose writes dst[k1*n2+j2] = src[j2*n1+k1] * W_n^(j2*k1),
// tiled like transposeBlocked. Within a tile row the exponent steps by
// j2, so an add-and-fold replaces a multiply-and-mod per element.
func (f *fourStepPlan) twiddleTranspose(p *Plan, dst, src []complex128) {
	n1, n2, n := f.n1, f.n2, p.n
	tw := p.tw
	half := len(tw) // n/2
	for rb := 0; rb < n2; rb += transposeBlock {
		rmax := min(rb+transposeBlock, n2)
		for cb := 0; cb < n1; cb += transposeBlock {
			cmax := min(cb+transposeBlock, n1)
			// c outer / r inner makes the writes contiguous (a full
			// cache line per dst row segment); the strided reads hit
			// tile-resident lines. The exponent steps by c as r walks.
			for c := cb; c < cmax; c++ {
				e := (rb * c) % n
				drow := dst[c*n2:]
				for r := rb; r < rmax; r++ {
					v := src[r*n1+c]
					if e < half {
						v *= tw[e]
					} else {
						v *= -tw[e-half]
					}
					drow[r] = v
					e += c
					if e >= n {
						e -= n
					}
				}
			}
		}
	}
}

// transposeSquareInPlace transposes the n x n row-major matrix x in
// place by swapping tile pairs across the diagonal.
func transposeSquareInPlace(x []complex128, n int) {
	for rb := 0; rb < n; rb += transposeBlock {
		rmax := min(rb+transposeBlock, n)
		for cb := rb; cb < n; cb += transposeBlock {
			cmax := min(cb+transposeBlock, n)
			for r := rb; r < rmax; r++ {
				clo := cb
				if cb == rb {
					clo = r + 1
				}
				for c := clo; c < cmax; c++ {
					x[r*n+c], x[c*n+r] = x[c*n+r], x[r*n+c]
				}
			}
		}
	}
}

// transposeBlock is the tile edge for the cache-blocked transposes: 32
// complex128s per row is a 512-byte line run, and a 32x32 tile (16 KiB
// in + 16 KiB out) sits comfortably in L1.
const transposeBlock = 32

// transposeBlocked writes dst[c*rows+r] = src[r*cols+c] for the
// row-major rows x cols matrix src, walking tiles so both the reads and
// the writes stay within a cache-resident window. dst must not alias src.
func transposeBlocked(dst, src []complex128, rows, cols int) {
	for rb := 0; rb < rows; rb += transposeBlock {
		rmax := rb + transposeBlock
		if rmax > rows {
			rmax = rows
		}
		for cb := 0; cb < cols; cb += transposeBlock {
			cmax := cb + transposeBlock
			if cmax > cols {
				cmax = cols
			}
			// c outer / r inner: contiguous writes, tile-resident
			// strided reads.
			for c := cb; c < cmax; c++ {
				drow := dst[c*rows:]
				for r := rb; r < rmax; r++ {
					drow[r] = src[r*cols+c]
				}
			}
		}
	}
}
