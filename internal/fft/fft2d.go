package fft

import (
	"fmt"
	"sync"

	"repro/internal/bits"
)

// Transformer is the interface shared by the 1D plans (*Plan and
// *AnyPlan): a fixed-length forward and inverse DFT where dst may alias
// src. The pencil decomposition in internal/pencil runs its row and
// column stages through this interface so distributed slabs execute the
// exact same per-element instruction sequence as Plan2D.
type Transformer interface {
	Len() int
	Transform(dst, src []complex128)
	Inverse(dst, src []complex128)
}

// NewTransformer picks the 1D plan for length n: the split-radix /
// four-step Plan for powers of two, Bluestein's AnyPlan otherwise.
// AnyPlan delegates to Plan at power-of-two sizes, so the choice never
// changes numerical results — only the construction cost.
func NewTransformer(n int) (Transformer, error) {
	if bits.IsPow2(n) {
		return NewPlan(n)
	}
	return NewAnyPlan(n)
}

// Plan2D computes two-dimensional DFTs of rows x cols arrays by
// row-column decomposition. Any side length >= 1 is supported:
// power-of-two sides use the split-radix kernels, other sides fall back
// to Bluestein's chirp-z plan. A Plan2D is safe for concurrent use: the
// only mutable state is the column-buffer pool, which hands each caller
// its own scratch, so steady-state transforms allocate nothing.
type Plan2D struct {
	rows, cols int
	rowT       Transformer // length cols, applied along each row
	colT       Transformer // length rows, applied down each column
	// col pools the rows-length column gather/scatter buffer.
	col sync.Pool
}

// NewPlan2D creates a 2D transform plan for any rows, cols >= 1.
func NewPlan2D(rows, cols int) (*Plan2D, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("fft: 2D shape %dx%d has a side < 1", rows, cols)
	}
	rt, err := NewTransformer(cols)
	if err != nil {
		return nil, fmt.Errorf("fft: 2D plan cols: %w", err)
	}
	ct, err := NewTransformer(rows)
	if err != nil {
		return nil, fmt.Errorf("fft: 2D plan rows: %w", err)
	}
	p := &Plan2D{rows: rows, cols: cols, rowT: rt, colT: ct}
	p.col.New = func() any {
		b := make([]complex128, rows)
		return &b
	}
	return p, nil
}

// Size returns the (rows, cols) shape.
func (p *Plan2D) Size() (rows, cols int) { return p.rows, p.cols }

func (p *Plan2D) checkLen(x []complex128) {
	if len(x) != p.rows*p.cols {
		panic(fmt.Sprintf("fft: 2D slice length %d does not match %dx%d", len(x), p.rows, p.cols))
	}
}

// Transform computes the forward 2D DFT of the row-major array src into
// dst (which may alias src).
func (p *Plan2D) Transform(dst, src []complex128) {
	p.apply(dst, src, false)
}

// Inverse computes the inverse 2D DFT of src into dst (may alias).
func (p *Plan2D) Inverse(dst, src []complex128) {
	p.apply(dst, src, true)
}

// apply runs the row-column decomposition: the row stage over the whole
// array, then the column stage through a pooled gather/scatter buffer.
// Both stages go through the same slab primitives the distributed
// pencil path uses, so single-node and distributed execution share the
// per-element operation order exactly.
func (p *Plan2D) apply(dst, src []complex128, inverse bool) {
	p.checkLen(src)
	p.checkLen(dst)
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	p.TransformRows(dst, inverse)
	//fftlint:ignore hotalloc pool.Get's New path allocates once per buffer, then reuses
	cp := p.col.Get().(*[]complex128)
	TransformColumns(p.colT, dst, p.rows, p.cols, inverse, *cp)
	p.col.Put(cp)
}

// TransformRows runs only the row stage of the decomposition over x,
// which holds len(x)/cols consecutive row-major rows — a contiguous
// slab of the full array, not necessarily all of it. This is the
// per-node compute step of the distributed pencil decomposition: each
// node transforms the rows it owns, and the column stage happens after
// the transpose.
func (p *Plan2D) TransformRows(x []complex128, inverse bool) {
	if p.cols == 0 || len(x)%p.cols != 0 {
		panic(fmt.Sprintf("fft: slab length %d is not a multiple of cols %d", len(x), p.cols))
	}
	for off := 0; off < len(x); off += p.cols {
		row := x[off : off+p.cols]
		if inverse {
			p.rowT.Inverse(row, row)
		} else {
			p.rowT.Transform(row, row)
		}
	}
}

// TransformColumns applies the length-rows transform t down each column
// of the row-major rows x cols band x: column c is gathered with stride
// cols into scratch, transformed, and scattered back, for c = 0..cols-1
// in order. The band may be any contiguous run of full-height columns
// of a larger array (a pencil), which is how the distributed column
// stage runs on the node that owns those columns after the transpose.
// scratch must have length >= rows; it exists so hot callers can reuse
// one buffer across bands.
func TransformColumns(t Transformer, x []complex128, rows, cols int, inverse bool, scratch []complex128) {
	if len(x) != rows*cols {
		panic(fmt.Sprintf("fft: band length %d does not match %dx%d", len(x), rows, cols))
	}
	if t.Len() != rows {
		panic(fmt.Sprintf("fft: column plan length %d does not match rows %d", t.Len(), rows))
	}
	if len(scratch) < rows {
		panic(fmt.Sprintf("fft: column scratch length %d < rows %d", len(scratch), rows))
	}
	col := scratch[:rows]
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = x[r*cols+c]
		}
		if inverse {
			t.Inverse(col, col)
		} else {
			t.Transform(col, col)
		}
		for r := 0; r < rows; r++ {
			x[r*cols+c] = col[r]
		}
	}
}
