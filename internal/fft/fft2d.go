package fft

import (
	"fmt"
	"sync"
)

// Plan2D computes two-dimensional DFTs of rows x cols arrays by
// row-column decomposition. Both dimensions must be powers of two. A
// Plan2D is safe for concurrent use: the only mutable state is the
// column-buffer pool, which hands each caller its own scratch, so
// steady-state transforms allocate nothing.
type Plan2D struct {
	rows, cols int
	rowPlan    *Plan
	colPlan    *Plan
	// col pools the rows-length column gather/scatter buffer.
	col sync.Pool
}

// NewPlan2D creates a 2D transform plan.
func NewPlan2D(rows, cols int) (*Plan2D, error) {
	rp, err := NewPlan(cols)
	if err != nil {
		return nil, fmt.Errorf("fft: 2D plan cols: %w", err)
	}
	cp, err := NewPlan(rows)
	if err != nil {
		return nil, fmt.Errorf("fft: 2D plan rows: %w", err)
	}
	p := &Plan2D{rows: rows, cols: cols, rowPlan: rp, colPlan: cp}
	p.col.New = func() any {
		b := make([]complex128, rows)
		return &b
	}
	return p, nil
}

// Size returns the (rows, cols) shape.
func (p *Plan2D) Size() (rows, cols int) { return p.rows, p.cols }

func (p *Plan2D) checkLen(x []complex128) {
	if len(x) != p.rows*p.cols {
		panic(fmt.Sprintf("fft: 2D slice length %d does not match %dx%d", len(x), p.rows, p.cols))
	}
}

// Transform computes the forward 2D DFT of the row-major array src into
// dst (which may alias src).
func (p *Plan2D) Transform(dst, src []complex128) {
	p.apply(dst, src, p.rowPlan.Transform, p.colPlan.Transform)
}

// Inverse computes the inverse 2D DFT of src into dst (may alias).
func (p *Plan2D) Inverse(dst, src []complex128) {
	p.apply(dst, src, p.rowPlan.Inverse, p.colPlan.Inverse)
}

// apply runs the row-column decomposition with the given 1D transforms,
// gathering each column through a pooled scratch buffer.
func (p *Plan2D) apply(dst, src []complex128, rowFn, colFn func(dst, src []complex128)) {
	p.checkLen(src)
	p.checkLen(dst)
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	// Rows first.
	for r := 0; r < p.rows; r++ {
		row := dst[r*p.cols : (r+1)*p.cols]
		rowFn(row, row)
	}
	// Then columns, via the pooled column buffer.
	//fftlint:ignore hotalloc pool.Get's New path allocates once per buffer, then reuses
	cp := p.col.Get().(*[]complex128)
	col := *cp
	for c := 0; c < p.cols; c++ {
		for r := 0; r < p.rows; r++ {
			col[r] = dst[r*p.cols+c]
		}
		colFn(col, col)
		for r := 0; r < p.rows; r++ {
			dst[r*p.cols+c] = col[r]
		}
	}
	p.col.Put(cp)
}
