package fft

import "fmt"

// Plan2D computes two-dimensional DFTs of rows x cols arrays by
// row-column decomposition. Both dimensions must be powers of two.
type Plan2D struct {
	rows, cols int
	rowPlan    *Plan
	colPlan    *Plan
}

// NewPlan2D creates a 2D transform plan.
func NewPlan2D(rows, cols int) (*Plan2D, error) {
	rp, err := NewPlan(cols)
	if err != nil {
		return nil, fmt.Errorf("fft: 2D plan cols: %w", err)
	}
	cp, err := NewPlan(rows)
	if err != nil {
		return nil, fmt.Errorf("fft: 2D plan rows: %w", err)
	}
	return &Plan2D{rows: rows, cols: cols, rowPlan: rp, colPlan: cp}, nil
}

// Size returns the (rows, cols) shape.
func (p *Plan2D) Size() (rows, cols int) { return p.rows, p.cols }

func (p *Plan2D) checkLen(x []complex128) {
	if len(x) != p.rows*p.cols {
		panic(fmt.Sprintf("fft: 2D slice length %d does not match %dx%d", len(x), p.rows, p.cols))
	}
}

// Transform computes the forward 2D DFT of the row-major array src into
// dst (which may alias src).
func (p *Plan2D) Transform(dst, src []complex128) {
	p.checkLen(src)
	p.checkLen(dst)
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	// Rows first.
	for r := 0; r < p.rows; r++ {
		row := dst[r*p.cols : (r+1)*p.cols]
		p.rowPlan.Transform(row, row)
	}
	// Then columns, via a scratch column buffer.
	col := make([]complex128, p.rows)
	for c := 0; c < p.cols; c++ {
		for r := 0; r < p.rows; r++ {
			col[r] = dst[r*p.cols+c]
		}
		p.colPlan.Transform(col, col)
		for r := 0; r < p.rows; r++ {
			dst[r*p.cols+c] = col[r]
		}
	}
}

// Inverse computes the inverse 2D DFT of src into dst (may alias).
func (p *Plan2D) Inverse(dst, src []complex128) {
	p.checkLen(src)
	p.checkLen(dst)
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	for r := 0; r < p.rows; r++ {
		row := dst[r*p.cols : (r+1)*p.cols]
		p.rowPlan.Inverse(row, row)
	}
	col := make([]complex128, p.rows)
	for c := 0; c < p.cols; c++ {
		for r := 0; r < p.rows; r++ {
			col[r] = dst[r*p.cols+c]
		}
		p.colPlan.Inverse(col, col)
		for r := 0; r < p.rows; r++ {
			dst[r*p.cols+c] = col[r]
		}
	}
}
