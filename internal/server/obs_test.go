package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func postBody(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := testClient.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestMetricsContentNegotiation checks GET /metrics serves JSON by
// default and the Prometheus text exposition under Accept: text/plain,
// and that the exposition passes the package's own parser-based lint.
func TestMetricsContentNegotiation(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Generate some traffic so counters and histograms are non-empty.
	resp := postBody(t, ts.URL+"/v1/fft", `{"input": [[1,0],[0,0],[0,0],[0,0]]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fft status = %d", resp.StatusCode)
	}

	// Default: JSON.
	resp, err := testClient.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default content type = %q, want JSON", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("JSON body: %v", err)
	}

	// Accept: text/plain → Prometheus exposition.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("prom content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"fftd_requests_total{route=\"POST /v1/fft\"} 1",
		"fftd_transforms_total 1",
		"fftd_request_duration_seconds_bucket{route=\"POST /v1/fft\",le=\"+Inf\"} 1",
		"go_goroutines ",
		"fftd_plan_cache_hit_ratio ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if errs := obs.LintExposition(strings.NewReader(text)); len(errs) > 0 {
		t.Fatalf("exposition fails lint: %v", errs)
	}
}

// TestPromExpositionDeterministic checks two consecutive scrapes of an
// idle server emit families and route labels in identical order.
func TestPromExpositionDeterministic(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, body := range []string{`{"input": [[1,0],[0,0]]}`, `{"input": [[2,0],[0,0]]}`} {
		resp := postBody(t, ts.URL+"/v1/fft", body)
		resp.Body.Close()
	}
	structure := func() string {
		var buf bytes.Buffer
		if err := s.metrics.writePrometheus(&buf, s.metrics.snapshot(s.cache, s.pool)); err != nil {
			t.Fatal(err)
		}
		// Keep only structure: names and labels, not values (uptime and
		// runtime gauges move between calls).
		var lines []string
		for _, l := range strings.Split(buf.String(), "\n") {
			if i := strings.LastIndexByte(l, ' '); i > 0 && !strings.HasPrefix(l, "#") {
				l = l[:i]
			}
			lines = append(lines, l)
		}
		return strings.Join(lines, "\n")
	}
	if a, b := structure(), structure(); a != b {
		t.Fatal("consecutive expositions have different structure")
	}
}

// TestRequestIDAndLogging checks every response carries an
// X-Request-ID and the structured log line repeats it with route and
// status.
func TestRequestIDAndLogging(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Config{Workers: 1, Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postBody(t, ts.URL+"/v1/fft", `{"input": [[1,0],[0,0]]}`)
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("no X-Request-ID header")
	}

	var rec struct {
		Msg    string `json:"msg"`
		ID     string `json:"id"`
		Route  string `json:"route"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, logBuf.String())
	}
	if rec.Msg != "request" || rec.ID != id || rec.Route != "POST /v1/fft" || rec.Status != 200 {
		t.Fatalf("log record = %+v, want id %q route POST /v1/fft status 200", rec, id)
	}
}

// TestSlowTraceCapture checks a request slower than the threshold shows
// up at GET /v1/debug/slow with its request ID and a span tree whose
// parfft phases carry the run's step costs.
func TestSlowTraceCapture(t *testing.T) {
	s := New(Config{Workers: 2, SlowThreshold: time.Nanosecond}) // everything is slow
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postBody(t, ts.URL+"/v1/simulate", `{"network":"hypercube","n":64,"scenario":"fft"}`)
	var sim SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&sim); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")

	resp, err := testClient.Get(ts.URL + "/v1/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var slow SlowTraces
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	if slow.Captured == 0 || len(slow.Traces) == 0 {
		t.Fatalf("no captured traces: %+v", slow)
	}
	var captured *CapturedTrace
	for i := range slow.Traces {
		if slow.Traces[i].RequestID == id {
			captured = &slow.Traces[i]
		}
	}
	if captured == nil {
		t.Fatalf("request %s not in slow ring", id)
	}
	if captured.Route != "POST /v1/simulate" {
		t.Errorf("captured route = %q", captured.Route)
	}

	// The span tree's per-phase step costs must sum to the run's totals:
	// parfft phase spans (ranks + bit-reversal) and netsim operation
	// spans each account for every data-transfer step once.
	sums := map[string]int{}
	roots := 0
	for _, sp := range captured.Spans {
		sums[sp.Cat] += sp.Steps
		if sp.Parent == 0 {
			roots++
			if sp.Cat != obs.CatServer {
				t.Errorf("root span %q has cat %q, want server", sp.Name, sp.Cat)
			}
		}
	}
	if roots != 1 {
		t.Errorf("span tree has %d roots, want 1", roots)
	}
	if sums[obs.CatParfft] != sim.TotalSteps {
		t.Errorf("parfft span steps = %d, simulation total = %d", sums[obs.CatParfft], sim.TotalSteps)
	}
	if sums[obs.CatNetsim] != sim.TotalSteps {
		t.Errorf("netsim span steps = %d, simulation total = %d", sums[obs.CatNetsim], sim.TotalSteps)
	}
}

// TestSampledTraceCapture checks TraceSampleEvery captures fast
// requests too, marked as sampled.
func TestSampledTraceCapture(t *testing.T) {
	s := New(Config{Workers: 1, TraceSampleEvery: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postBody(t, ts.URL+"/v1/fft", `{"input": [[1,0],[0,0]]}`)
	resp.Body.Close()

	traces := s.slow.list()
	if len(traces) != 1 {
		t.Fatalf("captured %d traces, want 1", len(traces))
	}
	if !traces[0].Sampled {
		t.Error("capture not marked sampled")
	}
	sawTransform := false
	for _, sp := range traces[0].Spans {
		if sp.Name == "transform" && sp.Cat == obs.CatCompute {
			sawTransform = true
		}
	}
	if !sawTransform {
		t.Error("no transform span in sampled capture")
	}
}

// TestUntracedRequestsSkipRing checks the zero-value Config captures
// nothing: no tracer is created, the ring stays empty.
func TestUntracedRequestsSkipRing(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postBody(t, ts.URL+"/v1/fft", `{"input": [[1,0],[0,0]]}`)
	resp.Body.Close()
	if traces := s.slow.list(); len(traces) != 0 {
		t.Fatalf("untraced config captured %d traces", len(traces))
	}
}

// TestSnapshotRouteOrderMatchesRequests checks RouteOrder and the
// Requests map always hold the same key set (the satellite fix: both
// are derived inside one critical section).
func TestSnapshotRouteOrderMatchesRequests(t *testing.T) {
	m := newMetrics(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			m.observe("GET /a", 200, time.Millisecond)
			m.observe("POST /b", 200, time.Millisecond)
		}
	}()
	for i := 0; i < 200; i++ {
		s := m.snapshot(nil, nil)
		if len(s.RouteOrder) != len(s.Requests) {
			t.Fatalf("RouteOrder has %d routes, Requests %d", len(s.RouteOrder), len(s.Requests))
		}
		for _, r := range s.RouteOrder {
			if _, ok := s.Requests[r]; !ok {
				t.Fatalf("RouteOrder names %q, missing from Requests", r)
			}
		}
	}
	<-done
}

// TestBucketHistCumulative checks observation placement and cumulative
// snapshots of the fixed-bound histogram.
func TestBucketHistCumulative(t *testing.T) {
	var h bucketHist
	h.observe(50 * time.Microsecond)  // <= 0.0001
	h.observe(100 * time.Microsecond) // == 0.0001 → same bucket (le is inclusive)
	h.observe(30 * time.Millisecond)  // <= 0.05
	h.observe(time.Minute)            // +Inf overflow
	s := h.snapshot()
	if s.cumulative[0] != 2 {
		t.Errorf("le=0.0001 cumulative = %d, want 2", s.cumulative[0])
	}
	if got := s.cumulative[numLatencyBounds]; got != 4 {
		t.Errorf("+Inf cumulative = %d, want 4", got)
	}
	if s.count != 4 {
		t.Errorf("count = %d", s.count)
	}
	for i := 1; i < len(s.cumulative); i++ {
		if s.cumulative[i] < s.cumulative[i-1] {
			t.Fatalf("bucket %d not cumulative", i)
		}
	}
}
