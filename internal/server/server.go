// Package server is the HTTP service layer of the repository: the
// long-lived counterpart to the one-shot cmd/ tools. It serves FFT
// transforms (single and batch) from a shared plan cache, runs network
// simulations and the paper's comparison tables on demand, and exposes
// health and metrics endpoints.
//
// Architecture: every compute-bearing request is dispatched to a
// bounded worker pool (backpressure instead of unbounded goroutines),
// carries a per-request context timeout, and is wrapped in
// panic-recovery middleware so a worker panic becomes one 500 response
// rather than a dead daemon. Identical concurrent simulate/compare
// queries are coalesced into a single execution. Shutdown is graceful:
// the HTTP listener stops accepting, in-flight requests finish, then
// the pool drains.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"repro/internal/plancache"
)

// Config tunes the service; zero values mean the documented defaults.
type Config struct {
	// Workers is the worker-pool size; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds jobs waiting for a worker; 0 means 256.
	QueueDepth int
	// RequestTimeout is the per-request context deadline; 0 means 30s.
	RequestTimeout time.Duration
	// PlanCacheSize is the plan-cache capacity in plans; 0 means 64.
	PlanCacheSize int
	// MaxTransformLen rejects transforms longer than this; 0 means 2^22.
	MaxTransformLen int
	// MaxBatch rejects /v1/fft batches larger than this; 0 means 4096.
	MaxBatch int
	// MaxSimNodes rejects simulations larger than this; 0 means 2^14.
	MaxSimNodes int
	// LatencyWindow is the latency histogram's sample window; 0 means
	// trace.DefaultHistogramWindow.
	LatencyWindow int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 64
	}
	if c.MaxTransformLen <= 0 {
		c.MaxTransformLen = 1 << 22
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxSimNodes <= 0 {
		c.MaxSimNodes = 1 << 14
	}
	return c
}

// Server is the fftd service: handlers plus the shared plan cache,
// worker pool, coalescing group and metrics.
type Server struct {
	cfg     Config
	cache   *plancache.Cache
	pool    *workerPool
	metrics *Metrics
	flights flightGroup
	mux     *http.ServeMux
}

// New creates a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   plancache.New(cfg.PlanCacheSize),
		pool:    newWorkerPool(cfg.Workers, cfg.QueueDepth),
		metrics: newMetrics(cfg.LatencyWindow),
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/fft", s.handleFFT)
	s.route("POST /v1/simulate", s.handleSimulate)
	s.route("GET /v1/compare", s.handleCompare)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the root handler; cmd/fftd mounts it on an
// http.Server and tests mount it on httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// PlanCache exposes the shared plan cache (tests assert hit counters).
func (s *Server) PlanCache() *plancache.Cache { return s.cache }

// MetricsSnapshot returns the current counters, as served by /metrics.
func (s *Server) MetricsSnapshot() Snapshot {
	return s.metrics.snapshot(s.cache, s.pool)
}

// Close drains the worker pool: queued jobs finish, workers exit. Call
// it after the HTTP listener has stopped accepting requests (e.g. after
// http.Server.Shutdown returns); requests arriving afterwards fail with
// 503.
func (s *Server) Close() { s.pool.close() }

// statusError carries an HTTP status through the handler plumbing.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// badRequest builds a 400-class statusError.
func badRequest(format string, args ...any) error {
	return &statusError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// httpStatus maps a handler error onto a response code: explicit
// statusErrors pass through, pool drain and worker panics become 503
// and 500, timeouts 504, everything else 500.
func httpStatus(err error) int {
	switch e := err.(type) {
	case *statusError:
		return e.status
	case *panicError:
		return http.StatusInternalServerError
	}
	if err == nil {
		return http.StatusOK
	}
	if errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// statusRecorder captures the status a handler wrote, for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// route mounts a handler wrapped in the service middleware: request
// counting, latency observation, per-request timeout, and panic
// recovery (a handler panic — as opposed to a worker panic, which the
// pool converts — also becomes a 500, not a dead connection without a
// response line).
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		defer func() {
			if p := recover(); p != nil {
				if rec.status == http.StatusOK {
					writeError(rec, fmt.Errorf("handler panic: %v", p))
				}
			}
			s.metrics.observe(pattern, rec.status, time.Since(start))
		}()
		h(rec, r)
	})
}

// writeJSON renders v with status 200.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing useful left to do.
		return
	}
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// writeError renders err with its mapped status code.
func writeError(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(errorBody{Error: err.Error(), Status: status})
}
