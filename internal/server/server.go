// Package server is the HTTP service layer of the repository: the
// long-lived counterpart to the one-shot cmd/ tools. It serves FFT
// transforms (single and batch) from a shared plan cache, runs network
// simulations and the paper's comparison tables on demand, and exposes
// health and metrics endpoints.
//
// Architecture: every compute-bearing request is dispatched to a
// bounded worker pool (backpressure instead of unbounded goroutines),
// carries a per-request context timeout, and is wrapped in
// panic-recovery middleware so a worker panic becomes one 500 response
// rather than a dead daemon. Identical concurrent simulate/compare
// queries are coalesced into a single execution. Shutdown is graceful:
// the HTTP listener stops accepting, in-flight requests finish, then
// the pool drains.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/wire"
	"repro/internal/obs"
	"repro/internal/pencil"
	"repro/internal/plancache"
)

// Config tunes the service; zero values mean the documented defaults.
type Config struct {
	// Workers is the worker-pool size; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds jobs waiting for a worker; 0 means 256.
	QueueDepth int
	// RequestTimeout is the per-request context deadline; 0 means 30s.
	RequestTimeout time.Duration
	// PlanCacheSize is the plan-cache capacity in plans; 0 means 64.
	PlanCacheSize int
	// MaxTransformLen rejects transforms longer than this; 0 means 2^22.
	MaxTransformLen int
	// MaxBatch rejects /v1/fft batches larger than this; 0 means 4096.
	MaxBatch int
	// PencilMemCap bounds per-node band memory for /v1/fft2d pencil
	// runs; larger transforms stream out of core. 0 means
	// pencil.DefaultMemCap (256 MiB).
	PencilMemCap int64
	// MaxSimNodes rejects simulations larger than this; 0 means 2^14.
	MaxSimNodes int
	// LatencyWindow is the latency histogram's sample window; 0 means
	// trace.DefaultHistogramWindow.
	LatencyWindow int
	// Logger, when non-nil, receives one structured record per finished
	// request (id, route, status, elapsed). Nil disables request logging.
	Logger *slog.Logger
	// SlowThreshold enables span tracing on compute-bearing routes:
	// requests slower than the threshold have their span tree captured
	// into the slow-trace ring served at GET /v1/debug/slow. Zero
	// disables both tracing and capture (the default; benchmarks and
	// tests see the untraced fast path).
	SlowThreshold time.Duration
	// TraceSampleEvery, when > 0, traces and captures every Nth
	// compute-bearing request regardless of speed — a low-cost way to
	// keep example traces flowing on a healthy service.
	TraceSampleEvery int
	// SlowRingSize bounds the slow-trace ring; 0 means 32.
	SlowRingSize int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 64
	}
	if c.MaxTransformLen <= 0 {
		c.MaxTransformLen = 1 << 22
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxSimNodes <= 0 {
		c.MaxSimNodes = 1 << 14
	}
	if c.SlowRingSize <= 0 {
		c.SlowRingSize = 32
	}
	return c
}

// Server is the fftd service: handlers plus the shared plan cache,
// worker pool, coalescing group and metrics.
type Server struct {
	cfg      Config
	cache    *plancache.Cache
	pool     *workerPool
	metrics  *Metrics
	flights  flightGroup
	mux      *http.ServeMux
	slow     *slowRing
	rids     *requestIDs
	reqSeq   atomic.Int64 // drives TraceSampleEvery
	draining atomic.Bool  // set by StartDrain; read by /readyz and cluster pings

	// cluster, when set, shards transforms across the ring instead of
	// always executing locally. Written once at startup (SetCluster)
	// before the listener starts accepting.
	cluster *cluster.Client

	// pencilWorker serves pencil band sub-operations: local /v1/fft2d
	// stages, and (in cluster mode) shards deposited by peers via
	// cluster.Node. pencilTransport carries the coordinator's
	// sub-operations — in-process single-node, over the cluster client
	// once SetCluster installs one.
	pencilWorker    *pencil.Worker
	pencilMetrics   *pencil.Metrics
	pencilTransport pencil.Transport
}

// New creates a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   plancache.New(cfg.PlanCacheSize),
		pool:    newWorkerPool(cfg.Workers, cfg.QueueDepth),
		metrics: newMetrics(cfg.LatencyWindow),
		slow:    newSlowRing(cfg.SlowRingSize),
		rids:    newRequestIDs(),
	}
	s.pencilWorker = pencil.NewWorker(pencil.WorkerConfig{
		MemCap: cfg.PencilMemCap,
		Plans:  s.cache,
	})
	s.pencilMetrics = &pencil.Metrics{}
	s.pencilTransport = pencil.NewLocalTransport(false, map[string]*pencil.Worker{
		localPencilWorker: s.pencilWorker,
	})
	s.mux = http.NewServeMux()
	// Compute-bearing routes are traceable; the cheap read-only
	// endpoints are not (tracing a metrics scrape tells nobody
	// anything, and sampling would fill the ring with them).
	s.route("POST /v1/fft", s.handleFFT, true)
	s.route("POST /v1/fft2d", s.handleFFT2D, true)
	s.route("POST /v1/simulate", s.handleSimulate, true)
	s.route("GET /v1/compare", s.handleCompare, true)
	s.route("GET /healthz", s.handleHealthz, false)
	s.route("GET /readyz", s.handleReadyz, false)
	s.route("GET /metrics", s.handleMetrics, false)
	s.route("GET /v1/debug/slow", s.handleSlow, false)
	return s
}

// Handler returns the root handler; cmd/fftd mounts it on an
// http.Server and tests mount it on httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// PlanCache exposes the shared plan cache (tests assert hit counters).
func (s *Server) PlanCache() *plancache.Cache { return s.cache }

// MetricsSnapshot returns the current counters, as served by /metrics.
// In cluster mode the snapshot carries the routing client's counters.
func (s *Server) MetricsSnapshot() Snapshot {
	snap := s.metrics.snapshot(s.cache, s.pool)
	if s.cluster != nil {
		cm := s.cluster.Metrics()
		snap.Cluster = &cm
	}
	pm := s.pencilMetrics.Snapshot()
	ws := s.pencilWorker.Stats()
	snap.Pencil = &pm
	snap.PencilWorker = &ws
	return snap
}

// StartDrain marks the server draining: /readyz starts answering 503
// and (in cluster mode) peers see ready=false on their next heartbeat,
// so new traffic routes away while in-flight requests finish. Call it
// when shutdown is requested, before http.Server.Shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called — readiness as
// distinct from liveness (/healthz stays 200 throughout a drain).
func (s *Server) Draining() bool { return s.draining.Load() }

// SetCluster installs the cluster routing client. Call it once during
// startup, before the HTTP listener accepts requests. It also switches
// /v1/fft2d onto the cluster: pencil sub-operations ride the client's
// pooled connections to every ring member, with the self-owned shard
// served in-process by this server's pencil worker.
func (s *Server) SetCluster(c *cluster.Client) {
	s.cluster = c
	s.pencilTransport = &cluster.PencilTransport{
		Client: c,
		Self:   c.Registry().Self(),
		Local:  s.pencilWorker,
	}
}

// PencilWorker exposes the server's pencil executor so cmd/fftd can
// hand it to cluster.NodeConfig — peers' coordinators then deposit
// bands into the same worker /v1/fft2d uses locally.
func (s *Server) PencilWorker() *pencil.Worker { return s.pencilWorker }

// Cluster returns the installed cluster client, or nil.
func (s *Server) Cluster() *cluster.Client { return s.cluster }

// ClusterExecutor returns this server's local transform executor: the
// plan-cache-backed function a cluster.Node runs forwarded transforms
// through, and the cluster.Client runs self-owned shards through. The
// results are byte-identical to the single-node serving path because it
// IS the single-node serving path.
func (s *Server) ClusterExecutor() cluster.Executor {
	return func(ctx context.Context, op *wire.TransformOp) ([]complex128, error) {
		return s.executeOp(ctx, op, nil)
	}
}

// Close drains the worker pool: queued jobs finish, workers exit. Call
// it after the HTTP listener has stopped accepting requests (e.g. after
// http.Server.Shutdown returns); requests arriving afterwards fail with
// 503.
func (s *Server) Close() { s.pool.close() }

// statusError carries an HTTP status through the handler plumbing.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// badRequest builds a 400-class statusError.
func badRequest(format string, args ...any) error {
	return &statusError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// unavailable builds a 503-class statusError — transient server-side
// conditions a client may retry, as distinct from caller errors.
func unavailable(format string, args ...any) error {
	return &statusError{status: http.StatusServiceUnavailable, msg: fmt.Sprintf(format, args...)}
}

// maxBodyBytes bounds a transform request body, derived from
// MaxTransformLen: the JSON wire form of one complex sample
// ("[<float>,<float>]") is under 64 bytes even at full float64
// precision, and 64 KiB covers the request envelope. Any valid request
// fits; a hostile or runaway body is cut off at the reader instead of
// buffered into memory.
func (s *Server) maxBodyBytes() int64 {
	return int64(s.cfg.MaxTransformLen)*64 + 64<<10
}

// decodeBody decodes a JSON request body capped by maxBodyBytes. A body
// over the cap maps to 413 Request Entity Too Large; malformed JSON
// (including a body truncated by the cap mid-token on some paths) stays
// a 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes())
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &statusError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			}
		}
		return badRequest("decode: %v", err)
	}
	return nil
}

// httpStatus maps a handler error onto a response code: explicit
// statusErrors pass through, pool drain and worker panics become 503
// and 500, timeouts 504, everything else 500.
func httpStatus(err error) int {
	switch e := err.(type) {
	case *statusError:
		return e.status
	case *panicError:
		return http.StatusInternalServerError
	}
	if err == nil {
		return http.StatusOK
	}
	if errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, ErrSaturated) {
		return http.StatusTooManyRequests
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// statusRecorder captures the status a handler wrote, for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// route mounts a handler wrapped in the service middleware: request
// IDs, request counting, latency observation, per-request timeout,
// structured logging, span tracing with slow-trace capture (traceable
// routes only), and panic recovery (a handler panic — as opposed to a
// worker panic, which the pool converts — also becomes a 500, not a
// dead connection without a response line).
func (s *Server) route(pattern string, h http.HandlerFunc, traceable bool) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.rids.next()
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()

		// A request is traced when slow-capture is armed (we cannot know
		// up front that it will be fast) or the sampler picks it. The
		// common untraced configuration pays one branch here and nil
		// tracer no-ops below.
		var tr *obs.Tracer
		var root *obs.Span
		sampled := false
		if traceable {
			if n := s.cfg.TraceSampleEvery; n > 0 && s.reqSeq.Add(1)%int64(n) == 0 {
				sampled = true
			}
			if sampled || s.cfg.SlowThreshold > 0 {
				tr = obs.New()
				root = tr.Start(pattern).SetCat(obs.CatServer).SetDetail("request " + id)
				tr.SetParent(root)
				ctx = obs.WithTracer(ctx, tr)
				ctx = obs.WithSpan(ctx, root)
			}
		}
		r = r.WithContext(ctx)
		defer func() {
			if p := recover(); p != nil {
				if rec.status == http.StatusOK {
					writeError(rec, fmt.Errorf("handler panic: %v", p))
				}
			}
			elapsed := time.Since(start)
			s.metrics.observe(pattern, rec.status, elapsed)
			var ro obs.Rollup
			if tr != nil {
				root.End()
				spans := tr.Snapshot()
				ro = obs.RollupOf(spans)
				if sampled || (s.cfg.SlowThreshold > 0 && elapsed >= s.cfg.SlowThreshold) {
					ct := CapturedTrace{
						RequestID:     id,
						Route:         pattern,
						Status:        rec.status,
						Start:         start,
						DurationMS:    float64(elapsed) / float64(time.Millisecond),
						Sampled:       sampled,
						WireBytesSent: ro.BytesSent,
						WireBytesRecv: ro.BytesRecv,
						RemoteSpans:   ro.RemoteSpans,
						Spans:         spans,
					}
					if tid := tr.TraceID(); tid != 0 {
						ct.TraceID = fmt.Sprintf("%016x", tid)
					}
					s.slow.add(ct)
					s.metrics.slowCaptured.Add(1)
				}
			}
			if l := s.cfg.Logger; l != nil {
				// One record per request. Traced requests widen it into the
				// canonical "wide event": the whole request story — stage
				// timings by span category, wire byte counts, remote span
				// count, trace ID — on a single queryable line.
				attrs := []slog.Attr{
					slog.String("id", id),
					slog.String("route", pattern),
					slog.Int("status", rec.status),
					slog.Duration("elapsed", elapsed),
				}
				if tr != nil {
					if tid := tr.TraceID(); tid != 0 {
						attrs = append(attrs, slog.String("trace_id", fmt.Sprintf("%016x", tid)))
					}
					attrs = append(attrs,
						slog.Int("spans", ro.Spans),
						slog.Int("remote_spans", ro.RemoteSpans),
						slog.Int64("wire_bytes_sent", ro.BytesSent),
						slog.Int64("wire_bytes_recv", ro.BytesRecv),
					)
					if ro.Steps > 0 {
						attrs = append(attrs, slog.Int("steps", ro.Steps))
					}
					cats := make([]string, 0, len(ro.StageNs))
					for cat := range ro.StageNs {
						cats = append(cats, cat)
					}
					sort.Strings(cats)
					stages := make([]any, 0, len(cats))
					for _, cat := range cats {
						stages = append(stages, slog.Float64(cat, float64(ro.StageNs[cat])/1e6))
					}
					attrs = append(attrs, slog.Group("stage_ms", stages...))
				}
				l.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
			}
		}()
		h(rec, r)
	})
}

// writeJSON renders v with status 200.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing useful left to do.
		return
	}
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// retryAfterSeconds is the Retry-After hint on 429 responses. The pool
// drains its bounded queue in well under a second at every measured
// size, so one second is a safe, cheap-to-compute backoff hint.
const retryAfterSeconds = "1"

// writeError renders err with its mapped status code. Saturation
// rejections carry a Retry-After header so well-behaved clients back
// off instead of hammering a full queue.
func writeError(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(errorBody{Error: err.Error(), Status: status})
}
