package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrDraining is returned by the pool when the server has begun
// graceful shutdown and no longer accepts new work.
var ErrDraining = errors.New("server: draining, not accepting new work")

// ErrSaturated is returned by the pool when every worker is busy and
// the queue is full. Handlers map it to HTTP 429 with a Retry-After
// header: shedding at the knee keeps saturation visible to load
// generators instead of hiding it behind unbounded queueing delay.
var ErrSaturated = errors.New("server: worker pool saturated")

// panicError wraps a recovered worker panic so handlers can convert it
// into a 500 response instead of letting it kill the daemon.
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("worker panic: %v", e.value)
}

// job is one unit of pool work: run fn, deliver nil or a panicError.
type job struct {
	fn   func()
	done chan error
}

// workerPool is a bounded pool: at most `workers` jobs execute at once
// and at most cap(jobs) wait in the queue. Submission is non-blocking:
// when the queue is full the pool rejects with ErrSaturated, providing
// the service's backpressure as an explicit 429 signal rather than
// queueing delay.
type workerPool struct {
	jobs      chan job
	wg        sync.WaitGroup
	mu        sync.RWMutex // guards closed vs. in-flight submits
	closed    bool
	workers   int
	queued    atomic.Int64
	active    atomic.Int64
	submitted atomic.Int64
	rejected  atomic.Int64
}

func newWorkerPool(workers, queue int) *workerPool {
	p := &workerPool{jobs: make(chan job, queue), workers: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.queued.Add(-1)
		p.active.Add(1)
		j.done <- runRecovered(j.fn)
		p.active.Add(-1)
	}
}

// runRecovered executes fn, converting a panic into a panicError so one
// bad request cannot take down the worker (and with it the daemon).
func runRecovered(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{value: r, stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// do submits fn and waits for it to finish. It returns ErrDraining once
// the pool is closed, ErrSaturated immediately when every worker is
// busy and the queue is full (no waiting for a slot: saturation is
// surfaced, not absorbed), the context error if the caller gives up
// waiting for a slow job, and a panicError if fn panicked. When do
// returns early on context expiry a queued fn may still run later;
// callers must not touch fn's captures after an error without their own
// synchronization.
func (p *workerPool) do(ctx context.Context, fn func()) error {
	j := job{fn: fn, done: make(chan error, 1)}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrDraining
	}
	select {
	case p.jobs <- j:
		p.queued.Add(1)
		p.submitted.Add(1)
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		p.rejected.Add(1)
		return ErrSaturated
	}
	select {
	case err := <-j.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops accepting new jobs, runs everything already queued, and
// waits for all workers to exit — the pool half of graceful drain. Safe
// to call more than once.
func (p *workerPool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// poolStats is the /metrics view of the pool.
type poolStats struct {
	Workers   int   `json:"workers"`
	Capacity  int   `json:"queue_capacity"`
	Queued    int64 `json:"queue_depth"`
	Active    int64 `json:"active"`
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
}

func (p *workerPool) stats() poolStats {
	return poolStats{
		Workers:   p.workers,
		Capacity:  cap(p.jobs),
		Queued:    p.queued.Load(),
		Active:    p.active.Load(),
		Submitted: p.submitted.Load(),
		Rejected:  p.rejected.Load(),
	}
}
