package server

// Regression tests for arbitrary-length serving and the real-inverse
// path: non-power-of-two complex transforms must be served end to end
// (HTTP and cluster) and match the naive DFT, and real_input+inverse
// must never be silently answered with a forward spectrum — the bug
// the RPC path used to have.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster/wire"
	"repro/internal/fft"
)

// TestFFTNonPow2MatchesDFT serves non-power-of-two complex transforms
// over HTTP and checks them against the O(n^2) oracle, including odd,
// prime and highly composite lengths, plus the inverse round trip.
func TestFFTNonPow2MatchesDFT(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{3, 15, 48, 97, 360} {
		in := make([]Complex, n)
		x := make([]complex128, n)
		for i := range in {
			re, im := rng.NormFloat64(), rng.NormFloat64()
			in[i] = Complex{re, im}
			x[i] = complex(re, im)
		}
		fwd := decode[FFTResponse](t, postJSON(t, ts.URL+"/v1/fft",
			FFTRequest{TransformSpec: TransformSpec{Input: in}}))
		if fwd.Results[0].Error != "" {
			t.Fatalf("n=%d: forward error: %s", n, fwd.Results[0].Error)
		}
		got := toComplex(fwd.Results[0].Output)
		want := fft.DFT(x)
		if d := fft.MaxAbsDiff(got, want); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: served transform differs from DFT by %g", n, d)
		}
		inv := decode[FFTResponse](t, postJSON(t, ts.URL+"/v1/fft",
			FFTRequest{TransformSpec: TransformSpec{Input: fwd.Results[0].Output, Inverse: true}}))
		if inv.Results[0].Error != "" {
			t.Fatalf("n=%d: inverse error: %s", n, inv.Results[0].Error)
		}
		back := toComplex(inv.Results[0].Output)
		if d := fft.MaxAbsDiff(back, x); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: round trip differs by %g", n, d)
		}
	}
	// NoReorder stays power-of-two-only: bit-reversed order is
	// undefined elsewhere.
	resp := decode[FFTResponse](t, postJSON(t, ts.URL+"/v1/fft",
		FFTRequest{TransformSpec: TransformSpec{Input: make([]Complex, 48), NoReorder: true}}))
	if resp.Results[0].Error == "" {
		t.Fatal("no_reorder at n=48 must carry an error")
	}
}

// TestFFTRealInverseHTTP drives the real_inverse surface: the bins a
// real_input transform returns must invert back to the samples, and a
// spectrum whose DC/Nyquist bins carry imaginary mass is rejected
// rather than silently projected.
func TestFFTRealInverseHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	samples := []float64{1, -2, 3.5, 4, -0.25, 6, 7, 8.125}
	fwd := decode[FFTResponse](t, postJSON(t, ts.URL+"/v1/fft",
		FFTRequest{TransformSpec: TransformSpec{RealInput: samples}}))
	if fwd.Results[0].Error != "" {
		t.Fatalf("forward error: %s", fwd.Results[0].Error)
	}
	if len(fwd.Results[0].Output) != len(samples)/2+1 {
		t.Fatalf("spectrum bins = %d, want %d", len(fwd.Results[0].Output), len(samples)/2+1)
	}
	inv := decode[FFTResponse](t, postJSON(t, ts.URL+"/v1/fft",
		FFTRequest{TransformSpec: TransformSpec{RealInverse: fwd.Results[0].Output}}))
	if inv.Results[0].Error != "" {
		t.Fatalf("real inverse error: %s", inv.Results[0].Error)
	}
	if inv.Results[0].N != len(samples) {
		t.Fatalf("real inverse n = %d, want %d", inv.Results[0].N, len(samples))
	}
	for i, c := range inv.Results[0].Output {
		//fftlint:ignore floatcmp the imaginary part is widened from a float64 literal zero; exactly-zero is the contract
		if math.Abs(c[0]-samples[i]) > 1e-12 || c[1] != 0 {
			t.Fatalf("sample %d = %v, want [%v 0]", i, c, samples[i])
		}
	}

	// Contaminated DC bin: rejected, not projected.
	bad := append([]Complex(nil), fwd.Results[0].Output...)
	bad[0][1] = 0.5
	resp := decode[FFTResponse](t, postJSON(t, ts.URL+"/v1/fft",
		FFTRequest{TransformSpec: TransformSpec{RealInverse: bad}}))
	if resp.Results[0].Error == "" {
		t.Fatal("non-real DC bin must carry an error")
	}

	// One bin cannot name a signal length.
	resp = decode[FFTResponse](t, postJSON(t, ts.URL+"/v1/fft",
		FFTRequest{TransformSpec: TransformSpec{RealInverse: []Complex{{1, 0}}}}))
	if resp.Results[0].Error == "" {
		t.Fatal("single-bin real_inverse must carry an error")
	}
}

// TestExecuteOpRealInverseRegression pins the RPC-layer fix at the
// executeOp level, the path a forwarded cluster op takes: an op with
// Real and Inverse both set is a real inverse of its half-spectrum
// Input, and its output must be the time-domain signal — not the
// forward spectrum of anything, which is what this path used to
// compute silently.
func TestExecuteOpRealInverseRegression(t *testing.T) {
	s := New(Config{})
	t.Cleanup(func() { s.Close() })
	samples := []float64{2, 0, -1, 4, 4, -3, 0.5, 1}
	rp, err := fft.NewRealPlan(len(samples))
	if err != nil {
		t.Fatal(err)
	}
	spec := rp.Forward(samples)

	op := &wire.TransformOp{Real: true, Inverse: true, Input: spec}
	if got, want := op.N(), len(samples); got != want {
		t.Fatalf("op.N() = %d, want %d", got, want)
	}
	out, err := s.executeOp(context.Background(), op, nil)
	if err != nil {
		t.Fatalf("real inverse op: %v", err)
	}
	if len(out) != len(samples) {
		t.Fatalf("output length %d, want %d", len(out), len(samples))
	}
	for i, c := range out {
		//fftlint:ignore floatcmp the imaginary part is widened from a float64 literal zero; exactly-zero is the contract
		if math.Abs(real(c)-samples[i]) > 1e-12 || imag(c) != 0 {
			t.Fatalf("sample %d = %v, want (%v, 0)", i, c, samples[i])
		}
	}
	// And explicitly: nothing resembling the forward spectrum.
	fwdOfSamples := rp.Forward(samples)
	if len(out) == len(fwdOfSamples) {
		t.Fatalf("output shape matches the forward spectrum — regression")
	}

	// A malformed real inverse (empty spectrum) is rejected outright.
	if _, err := s.executeOp(context.Background(), &wire.TransformOp{Real: true, Inverse: true}, nil); err == nil {
		t.Fatal("empty real-inverse op must error")
	}
}

// TestClusterNonPow2BitIdentical runs a non-power-of-two transform
// through a 3-node cluster and a single-node server and requires the
// outputs bit-identical: both execute the same cached AnyPlan path via
// executeOp, wherever the ring places the op.
func TestClusterNonPow2BitIdentical(t *testing.T) {
	sc := startServerCluster(t, 3, Config{})
	_, single := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{48, 97, 360} {
		in := make([]Complex, n)
		for i := range in {
			in[i] = Complex{rng.NormFloat64(), rng.NormFloat64()}
		}
		req := FFTRequest{TransformSpec: TransformSpec{Input: in}}
		cl := decode[FFTResponse](t, postJSON(t, sc.https[0].URL+"/v1/fft", req))
		if cl.Results[0].Error != "" {
			t.Fatalf("n=%d: cluster error: %s", n, cl.Results[0].Error)
		}
		sg := decode[FFTResponse](t, postJSON(t, single.URL+"/v1/fft", req))
		if sg.Results[0].Error != "" {
			t.Fatalf("n=%d: single-node error: %s", n, sg.Results[0].Error)
		}
		a := toComplex(cl.Results[0].Output)
		b := toComplex(sg.Results[0].Output)
		//fftlint:ignore floatcmp both paths run the identical AnyPlan kernel through executeOp; bit-equality is the cluster's serving contract
		if d := fft.MaxAbsDiff(a, b); d != 0 {
			t.Fatalf("n=%d: cluster output differs from single-node by %g", n, d)
		}
	}
}
