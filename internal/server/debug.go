package server

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// CapturedTrace is one request's span tree as held by the slow-trace
// ring and served at GET /v1/debug/slow: enough to see where a slow
// request spent its time without re-running it under a profiler.
type CapturedTrace struct {
	RequestID  string    `json:"request_id"`
	Route      string    `json:"route"`
	Status     int       `json:"status"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Sampled    bool      `json:"sampled,omitempty"` // captured by sampling, not slowness
	// TraceID is the cross-node trace ID (hex) once the request's trace
	// crossed the cluster port; empty for purely local traces.
	TraceID string `json:"trace_id,omitempty"`
	// WireBytesSent and WireBytesRecv sum the local spans' wire byte
	// counts — what this coordinator moved for the request. RemoteSpans
	// counts spans grafted from peers; Spans includes them, so a slow
	// forwarded request shows where the time went on the other side too.
	WireBytesSent int64          `json:"wire_bytes_sent,omitempty"`
	WireBytesRecv int64          `json:"wire_bytes_recv,omitempty"`
	RemoteSpans   int            `json:"remote_spans,omitempty"`
	Spans         []obs.SpanData `json:"spans"`
}

// SlowTraces is the GET /v1/debug/slow body.
type SlowTraces struct {
	// Captured counts every capture since start; the ring holds only the
	// most recent ones.
	Captured int64 `json:"captured"`
	// CommRooflineRatio is the cluster's achieved-over-optimal
	// communication ratio at serve time (cluster mode only): wire bytes
	// actually moved divided by the analytical floor. ≥ 1 once any
	// transform was served remotely; 0 before.
	CommRooflineRatio float64         `json:"comm_roofline_ratio,omitempty"`
	Traces            []CapturedTrace `json:"traces"`
}

// slowRing is a fixed-size ring of captured request traces, newest
// winning. Captures happen off the request's critical path (after the
// response is written), so a mutex is plenty.
type slowRing struct {
	mu   sync.Mutex
	buf  []CapturedTrace
	next int
	n    int // live entries, <= len(buf)
}

func newSlowRing(size int) *slowRing {
	return &slowRing{buf: make([]CapturedTrace, size)}
}

func (r *slowRing) add(t CapturedTrace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// list returns the captured traces, newest first.
func (r *slowRing) list() []CapturedTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CapturedTrace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// requestIDs hands out process-unique request IDs: a random per-process
// prefix (so IDs from successive daemon runs never collide in logs)
// plus a sequence number.
type requestIDs struct {
	prefix string
	mu     sync.Mutex
	seq    uint64
}

func newRequestIDs() *requestIDs {
	return &requestIDs{prefix: fmt.Sprintf("%08x", rand.Uint32())}
}

func (g *requestIDs) next() string {
	g.mu.Lock()
	g.seq++
	seq := g.seq
	g.mu.Unlock()
	return fmt.Sprintf("%s-%06d", g.prefix, seq)
}
