package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fft"
)

// TestIntegrationBatchThroughDaemon is the acceptance test of the
// service tentpole: a batch of >= 64 mixed transforms flows through the
// daemon; every result must match direct internal/fft output and the
// plan cache must report hits (64 transforms over 6 distinct plans).
func TestIntegrationBatchThroughDaemon(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(99))

	const batch = 64
	sizes := []int{64, 128, 256, 512}
	specs := make([]TransformSpec, batch)
	type expectation struct {
		want []complex128
	}
	expect := make([]expectation, batch)
	for i := range specs {
		n := sizes[i%len(sizes)]
		switch i % 3 {
		case 0: // forward complex
			in := make([]Complex, n)
			x := make([]complex128, n)
			for j := range in {
				re, im := rng.NormFloat64(), rng.NormFloat64()
				in[j] = Complex{re, im}
				x[j] = complex(re, im)
			}
			specs[i] = TransformSpec{Input: in}
			expect[i].want = fft.MustPlan(n).Forward(x)
		case 1: // inverse complex
			in := make([]Complex, n)
			x := make([]complex128, n)
			for j := range in {
				re, im := rng.NormFloat64(), rng.NormFloat64()
				in[j] = Complex{re, im}
				x[j] = complex(re, im)
			}
			specs[i] = TransformSpec{Input: in, Inverse: true}
			expect[i].want = fft.MustPlan(n).Backward(x)
		case 2: // real input
			in := make([]float64, n)
			for j := range in {
				in[j] = rng.NormFloat64()
			}
			specs[i] = TransformSpec{RealInput: in}
			rp, err := fft.NewRealPlan(n)
			if err != nil {
				t.Fatal(err)
			}
			expect[i].want = rp.Forward(in)
		}
	}

	resp := postJSON(t, ts.URL+"/v1/fft", FFTRequest{Transforms: specs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := decode[FFTResponse](t, resp)
	if body.Batch != batch || len(body.Results) != batch {
		t.Fatalf("batch = %d, results = %d, want %d", body.Batch, len(body.Results), batch)
	}
	for i, res := range body.Results {
		if res.Error != "" {
			t.Fatalf("transform %d failed: %s", i, res.Error)
		}
		got := toComplex(res.Output)
		if d := fft.MaxAbsDiff(got, expect[i].want); d > 1e-12 {
			t.Fatalf("transform %d differs from direct fft by %g", i, d)
		}
	}

	snap := s.MetricsSnapshot()
	if snap.PlanCache.Hits == 0 {
		t.Fatal("plan cache recorded no hits across a 64-transform batch")
	}
	if snap.Transforms != batch {
		t.Fatalf("transforms counter = %d, want %d", snap.Transforms, batch)
	}
}

// TestIntegrationGracefulDrain exercises the SIGTERM path the same way
// cmd/fftd does: a real http.Server is shut down while requests are in
// flight; every accepted request must complete successfully — none may
// be dropped — and the worker pool must drain afterwards.
func TestIntegrationGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 512})
	// Count handler entries so the test can initiate shutdown only once
	// every request is genuinely in flight (accepted and being served);
	// a connection still transmitting its body when Shutdown fires is
	// legitimately closed and would flake the test.
	var entered atomic.Int64
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered.Add(1)
		s.Handler().ServeHTTP(w, r)
	})
	httpSrv := &http.Server{Handler: counting}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	//fftlint:ignore goleak lifecycle lives in httpSrv: this test's whole point is calling httpSrv.Shutdown below, which unblocks Serve
	go httpSrv.Serve(ln) //nolint:errcheck
	base := "http://" + ln.Addr().String()

	// A moderately heavy batch so requests are genuinely in flight when
	// shutdown begins.
	const clients = 16
	mkBody := func(seed int64) []byte {
		rng := rand.New(rand.NewSource(seed))
		specs := make([]TransformSpec, 8)
		for i := range specs {
			in := make([]Complex, 4096)
			for j := range in {
				in[j] = Complex{rng.NormFloat64(), rng.NormFloat64()}
			}
			specs[i] = TransformSpec{Input: in}
		}
		data, err := json.Marshal(FFTRequest{Transforms: specs})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	var wg sync.WaitGroup
	statuses := make([]int, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := mkBody(int64(i))
			resp, err := testClient.Post(base+"/v1/fft", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			var fr FFTResponse
			if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
				errs[i] = err
				return
			}
			if len(fr.Results) != 8 {
				errs[i] = fmt.Errorf("dropped results: got %d of 8", len(fr.Results))
			}
		}(i)
	}
	// Wait until every request is in flight, then shut down exactly as
	// cmd/fftd's SIGTERM path does.
	deadline := time.Now().Add(30 * time.Second)
	for entered.Load() < clients {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests reached the server", entered.Load(), clients)
		}
		time.Sleep(time.Millisecond)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	s.Close()
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d dropped: %v", i, errs[i])
		}
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d status = %d, want 200 (in-flight requests must finish)", i, statuses[i])
		}
	}

	// After drain the pool rejects new work with 503.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/fft",
		bytes.NewReader([]byte(`{"input":[[1,0],[2,0]]}`)))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request status = %d, want 503", rec.Code)
	}
	if s.MetricsSnapshot().Drained == 0 {
		t.Fatal("drained counter not incremented")
	}
}
