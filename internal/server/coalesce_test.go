package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupCoalescesConcurrentIdenticalRequests hammers one
// flightGroup with many goroutines issuing identical keys. Run under
// the race detector (make race) this exercises the leader/waiter
// publication protocol; the assertions pin that every caller observes
// the leader's result and that exactly the non-shared callers executed
// the function.
func TestFlightGroupCoalescesConcurrentIdenticalRequests(t *testing.T) {
	const (
		callers = 64
		keys    = 4
	)
	var g flightGroup
	var execs [keys]atomic.Int64

	start := make(chan struct{})
	release := make(chan struct{})
	var ready, done sync.WaitGroup
	var nonShared atomic.Int64
	ready.Add(callers)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		k := i % keys
		go func(k int) {
			defer done.Done()
			ready.Done()
			<-start
			key := fmt.Sprintf("req-%d", k)
			v, shared, err := g.do(key, func() (any, error) {
				execs[k].Add(1)
				<-release // hold the flight open so duplicates pile up
				return fmt.Sprintf("result-%d", k), nil
			})
			if err != nil {
				t.Errorf("key %s: unexpected error %v", key, err)
			}
			if v != fmt.Sprintf("result-%d", k) {
				t.Errorf("key %s: got %v", key, v)
			}
			if !shared {
				nonShared.Add(1)
			}
		}(k)
	}
	ready.Wait()
	close(start)
	// Leaders are now blocked in fn; give the duplicates a generous
	// window to register as waiters before the flights land.
	time.Sleep(50 * time.Millisecond)
	close(release)
	done.Wait()

	var totalExecs int64
	for k := range execs {
		n := execs[k].Load()
		if n < 1 {
			t.Errorf("key %d: function never executed", k)
		}
		totalExecs += n
	}
	// Exactly the callers reporting shared=false ran the function.
	if got := nonShared.Load(); got != totalExecs {
		t.Errorf("%d non-shared callers but %d executions", got, totalExecs)
	}
	// With all flights held open until every goroutine launched, the
	// vast majority of callers must have coalesced.
	if totalExecs >= callers {
		t.Errorf("no coalescing: %d executions for %d callers", totalExecs, callers)
	}
}

// TestFlightGroupErrorSharing pins that a leader's error is delivered
// to every waiter of the same flight.
func TestFlightGroupErrorSharing(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	wantErr := fmt.Errorf("deterministic failure")

	var done sync.WaitGroup
	const callers = 8
	done.Add(callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			_, _, err := g.do("failing", func() (any, error) {
				<-release
				return nil, wantErr
			})
			errs[i] = err
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	done.Wait()
	for i, err := range errs {
		if err == nil || err.Error() != wantErr.Error() {
			t.Errorf("caller %d: error = %v, want %v", i, err, wantErr)
		}
	}
}

// TestFlightGroupPanickingLeaderDoesNotDeadlock is the regression test
// for the panic-cleanup bug: before the fix, a leader whose fn panicked
// left its map entry in place and never closed done, so every follower
// and every future caller of the key blocked forever. Now the panic is
// converted into a panicError shared by leader and followers, and the
// key is usable again afterwards.
func TestFlightGroupPanickingLeaderDoesNotDeadlock(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})

	const followers = 7
	results := make(chan error, followers+1)
	fn := func() (any, error) {
		<-release // hold the flight open so followers pile up
		panic("leader exploded")
	}
	go func() {
		_, _, err := g.do("boom", fn)
		results <- err
	}()
	for i := 0; i < followers; i++ {
		go func() {
			_, _, err := g.do("boom", fn)
			results <- err
		}()
	}
	time.Sleep(20 * time.Millisecond) // let followers register as waiters
	close(release)

	for i := 0; i < followers+1; i++ {
		select {
		case err := <-results:
			var pe *panicError
			if !errors.As(err, &pe) {
				t.Fatalf("caller %d: err = %v, want panicError", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("deadlock: only %d of %d callers returned after the leader panicked", i, followers+1)
		}
	}

	// The stale entry must be gone: a fresh call for the same key runs.
	v, shared, err := g.do("boom", func() (any, error) { return "recovered", nil })
	if err != nil || shared || v != "recovered" {
		t.Fatalf("post-panic call: v=%v shared=%v err=%v, want fresh execution", v, shared, err)
	}
}

// TestFlightGroupSequentialCallsDoNotShare pins that the group is a
// coalescer, not a cache: once a flight lands, the next call for the
// same key executes again.
func TestFlightGroupSequentialCallsDoNotShare(t *testing.T) {
	var g flightGroup
	var execs int
	fn := func() (any, error) { execs++; return execs, nil }
	for i := 1; i <= 3; i++ {
		v, shared, err := g.do("seq", fn)
		if err != nil || shared || v != i {
			t.Fatalf("call %d: v=%v shared=%v err=%v", i, v, shared, err)
		}
	}
}
