package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// ---- /readyz ----

func TestReadyzFlipsOnDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, err := testClient.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: status %d", resp.StatusCode)
	}
	if body := decode[HealthResponse](t, resp); body.Status != "ready" {
		t.Fatalf("/readyz body = %+v", body)
	}

	s.StartDrain()

	resp, err = testClient.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: status %d, want 503", resp.StatusCode)
	}
	if body := decode[HealthResponse](t, resp); body.Status != "draining" {
		t.Fatalf("/readyz drain body = %+v", body)
	}

	// Liveness is drain-invariant: orchestrators must not restart a
	// process that is merely finishing its in-flight work.
	resp, err = testClient.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain: status %d, want 200", resp.StatusCode)
	}
}

// ---- cluster-mode serving ----

// serverCluster is n fftd server instances joined into one ring, each
// with its own HTTP front end, cluster listener, registry and client —
// the in-process equivalent of n `fftd -cluster -peers=...` processes.
type serverCluster struct {
	servers []*Server
	https   []*httptest.Server
	nodes   []*cluster.Node
}

func startServerCluster(t *testing.T, n int, cfg Config) *serverCluster {
	t.Helper()
	sc := &serverCluster{}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		s := New(cfg)
		node, err := cluster.Listen("127.0.0.1:0", cluster.NodeConfig{
			Exec:   s.ClusterExecutor(),
			Ready:  func() bool { return !s.Draining() },
			Pencil: s.PencilWorker(),
		})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = node.Addr()
		sc.servers = append(sc.servers, s)
		sc.nodes = append(sc.nodes, node)
	}
	for i, s := range sc.servers {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		reg := cluster.NewRegistry(addrs[i], peers, cluster.RegistryConfig{})
		client, err := cluster.NewClient(reg, cluster.ClientConfig{
			Self:  addrs[i],
			Local: s.ClusterExecutor(),
		})
		if err != nil {
			t.Fatal(err)
		}
		s.SetCluster(client)
		sc.https = append(sc.https, httptest.NewServer(s.Handler()))
		t.Cleanup(client.Close)
	}
	t.Cleanup(func() {
		for i := range sc.servers {
			sc.https[i].Close()
			_ = sc.nodes[i].Close()
			sc.servers[i].Close()
		}
	})
	return sc
}

// clusterBatch builds a 64-transform batch spanning sizes and kinds, so
// shapes land on different ring owners.
func clusterBatch() []TransformSpec {
	rng := rand.New(rand.NewSource(99))
	specs := make([]TransformSpec, 64)
	for i := range specs {
		n := 64 << (uint(i) % 5)
		switch i % 4 {
		case 0:
			specs[i] = TransformSpec{Input: randComplexInput(rng, n)}
		case 1:
			specs[i] = TransformSpec{Input: randComplexInput(rng, n), Inverse: true}
		case 2:
			specs[i] = TransformSpec{Input: randComplexInput(rng, n), NoReorder: true}
		default:
			re := make([]float64, n)
			for j := range re {
				re[j] = rng.NormFloat64()
			}
			specs[i] = TransformSpec{RealInput: re}
		}
	}
	return specs
}

func randComplexInput(rng *rand.Rand, n int) []Complex {
	in := make([]Complex, n)
	for i := range in {
		in[i] = Complex{rng.NormFloat64(), rng.NormFloat64()}
	}
	return in
}

// TestClusterServesBatchBitIdentical is the tentpole acceptance check:
// a 64-transform batch served through a 3-node ring must come back
// bit-identical to the same batch served by a single-node fftd,
// because remote execution reaches the exact same plan-cache code path.
func TestClusterServesBatchBitIdentical(t *testing.T) {
	sc := startServerCluster(t, 3, Config{})
	_, single := newTestServer(t, Config{})

	specs := clusterBatch()
	req := FFTRequest{Transforms: specs}

	resp := postJSON(t, sc.https[0].URL+"/v1/fft", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster batch status = %d", resp.StatusCode)
	}
	got := decode[FFTResponse](t, resp)

	resp = postJSON(t, single.URL+"/v1/fft", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single batch status = %d", resp.StatusCode)
	}
	want := decode[FFTResponse](t, resp)

	if got.Batch != want.Batch || len(got.Results) != len(want.Results) {
		t.Fatalf("shape mismatch: cluster %d/%d vs single %d/%d",
			got.Batch, len(got.Results), want.Batch, len(want.Results))
	}
	for i := range got.Results {
		g, w := got.Results[i], want.Results[i]
		if g.Error != "" || w.Error != "" {
			t.Fatalf("transform %d errored: cluster %q single %q", i, g.Error, w.Error)
		}
		if g.N != w.N || len(g.Output) != len(w.Output) {
			t.Fatalf("transform %d shape: cluster n=%d/%d single n=%d/%d",
				i, g.N, len(g.Output), w.N, len(w.Output))
		}
		for j := range g.Output {
			if g.Output[j] != w.Output[j] {
				t.Fatalf("transform %d sample %d: cluster %v != single %v",
					i, j, g.Output[j], w.Output[j])
			}
		}
	}

	// The ring must actually have forwarded work: a 3-node cluster where
	// every shape happens to land on the entry node proves nothing.
	m := sc.servers[0].Cluster().Metrics()
	if m.Forwarded == 0 {
		t.Fatal("no transforms were forwarded; ring routing is inert")
	}
	if m.Local == 0 {
		t.Fatal("no transforms ran locally; self-shortcut is broken")
	}
}

// TestClusterMetricsExposed asserts /metrics carries the routing
// counters in cluster mode (JSON shape satellite).
func TestClusterMetricsExposed(t *testing.T) {
	sc := startServerCluster(t, 2, Config{})

	resp := postJSON(t, sc.https[0].URL+"/v1/fft", FFTRequest{Transforms: clusterBatch()[:8]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	r, err := testClient.Get(sc.https[0].URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var snap struct {
		Cluster *cluster.ClientMetrics `json:"cluster"`
	}
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cluster == nil {
		t.Fatal("/metrics has no cluster section in cluster mode")
	}
	if snap.Cluster.Local+snap.Cluster.Forwarded == 0 {
		t.Fatalf("cluster counters empty: %+v", snap.Cluster)
	}

	// Single-node snapshots must omit the section entirely.
	_, single := newTestServer(t, Config{})
	r2, err := testClient.Get(single.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(r2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["cluster"]; present {
		t.Fatal("single-node /metrics leaked a cluster section")
	}
}

// TestClusterRemoteValidationMapsTo400 exercises the RemoteError → 400
// mapping: a transform the remote peer rejects must surface as a
// per-transform error, not a 5xx. Non-power-of-two complex transforms
// are now served via Bluestein, so the shape every node still rejects
// identically at plan time is a non-power-of-two real transform.
func TestClusterRemoteValidationMapsTo400(t *testing.T) {
	sc := startServerCluster(t, 2, Config{})
	bad := TransformSpec{RealInput: make([]float64, 48)} // not a power of two
	resp := postJSON(t, sc.https[0].URL+"/v1/fft", FFTRequest{TransformSpec: bad})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d (per-transform failures keep the batch 200)", resp.StatusCode)
	}
	body := decode[FFTResponse](t, resp)
	if len(body.Results) != 1 || body.Results[0].Error == "" {
		t.Fatalf("invalid transform produced no error: %+v", body.Results)
	}
}

// TestPromShardAndClusterFamilies asserts the Prometheus exposition
// carries the per-shard plan-cache families (always) and the cluster
// routing counters (cluster mode only), with shard labels in index
// order so scrapes stay deterministic.
func TestPromShardAndClusterFamilies(t *testing.T) {
	sc := startServerCluster(t, 2, Config{})
	resp := postJSON(t, sc.https[0].URL+"/v1/fft", FFTRequest{Transforms: clusterBatch()[:8]})
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodGet, sc.https[0].URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, family := range []string{
		"fftd_plan_cache_shard_size", "fftd_plan_cache_shard_capacity",
		"fftd_plan_cache_shard_evictions_total",
		"fftd_cluster_local_total", "fftd_cluster_forwarded_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing family %s", family)
		}
	}
	// Shard labels appear in index order.
	if i0, i1 := strings.Index(text, `shard="0"`), strings.Index(text, `shard="1"`); i0 < 0 || i1 < 0 || i0 > i1 {
		t.Errorf("shard labels missing or out of order (shard0 at %d, shard1 at %d)", i0, i1)
	}
}

// TestClusterDrainStopsRouting: after StartDrain, a peer's heartbeat
// sees ready=false and routes away from the draining node.
func TestClusterDrainStopsRouting(t *testing.T) {
	sc := startServerCluster(t, 2, Config{})
	// Start heartbeats from node 0's registry against node 1.
	c0 := sc.servers[0].Cluster()
	c0.Registry().Start(10*time.Millisecond, c0.Ping)

	sc.servers[1].StartDrain()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if c0.Registry().Ring().Size() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining peer never left node 0's ring")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
