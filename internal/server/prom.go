package server

import (
	"io"
	"runtime"
	"strconv"

	"repro/internal/obs"
	"repro/internal/obs/roofline"
)

// writePrometheus renders the full metrics surface in Prometheus text
// exposition format 0.0.4: the daemon counters of Snapshot, per-route
// latency histograms with cumulative le buckets, plan-cache and
// worker-pool gauges, and the Go runtime gauges (goroutines, heap, GC
// pause) a dashboard needs next to service latency. Families and label
// sets are emitted in sorted route order, so consecutive scrapes of an
// idle daemon are byte-identical.
func (m *Metrics) writePrometheus(w io.Writer, s Snapshot) error {
	pw := obs.NewPromWriter(w)

	pw.Header("fftd_uptime_seconds", "gauge", "Seconds since the daemon started.")
	pw.Sample("fftd_uptime_seconds", nil, s.UptimeSeconds)

	pw.Header("fftd_requests_total", "counter", "HTTP requests served, by route pattern.")
	for _, route := range s.RouteOrder {
		pw.Sample("fftd_requests_total", []obs.Label{{Name: "route", Value: route}}, float64(s.Requests[route]))
	}

	pw.Header("fftd_responses_total", "counter", "HTTP responses, by status class.")
	for _, class := range []string{"2xx", "4xx", "5xx"} {
		pw.Sample("fftd_responses_total", []obs.Label{{Name: "class", Value: class}}, float64(s.Responses[class]))
	}

	pw.Header("fftd_transforms_total", "counter", "Individual FFT transforms served.")
	pw.Sample("fftd_transforms_total", nil, float64(s.Transforms))
	pw.Header("fftd_simulations_total", "counter", "Simulation runs executed (coalesced followers excluded).")
	pw.Sample("fftd_simulations_total", nil, float64(s.Simulations))
	pw.Header("fftd_coalesced_total", "counter", "Requests served by another identical in-flight execution.")
	pw.Sample("fftd_coalesced_total", nil, float64(s.Coalesced))
	pw.Header("fftd_drained_total", "counter", "Requests rejected because the server was draining.")
	pw.Sample("fftd_drained_total", nil, float64(s.Drained))
	pw.Header("fftd_slow_traces_total", "counter", "Requests captured into the slow-trace ring.")
	pw.Sample("fftd_slow_traces_total", nil, float64(s.SlowCaptured))

	pw.Header("fftd_plan_cache_hits_total", "counter", "Plan cache hits.")
	pw.Sample("fftd_plan_cache_hits_total", nil, float64(s.PlanCache.Hits))
	pw.Header("fftd_plan_cache_misses_total", "counter", "Plan cache misses.")
	pw.Sample("fftd_plan_cache_misses_total", nil, float64(s.PlanCache.Misses))
	pw.Header("fftd_plan_cache_evictions_total", "counter", "Plans evicted from the cache.")
	pw.Sample("fftd_plan_cache_evictions_total", nil, float64(s.PlanCache.Evictions))
	pw.Header("fftd_plan_cache_size", "gauge", "Plans currently cached.")
	pw.Sample("fftd_plan_cache_size", nil, float64(s.PlanCache.Size))
	pw.Header("fftd_plan_cache_capacity", "gauge", "Plan cache capacity.")
	pw.Sample("fftd_plan_cache_capacity", nil, float64(s.PlanCache.Capacity))
	pw.Header("fftd_plan_cache_hit_ratio", "gauge", "Hits / lookups since start (0 when no lookups).")
	ratio := 0.0
	if lookups := s.PlanCache.Hits + s.PlanCache.Misses; lookups > 0 {
		ratio = float64(s.PlanCache.Hits) / float64(lookups)
	}
	pw.Sample("fftd_plan_cache_hit_ratio", nil, ratio)

	// Per-shard occupancy and evictions, labelled by shard index in
	// natural order (the snapshot slice is already index-ordered, so the
	// exposition stays deterministic).
	pw.Header("fftd_plan_cache_shard_size", "gauge", "Plans cached per LRU shard.")
	for i, sh := range s.PlanCache.Shards {
		pw.Sample("fftd_plan_cache_shard_size",
			[]obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(sh.Size))
	}
	pw.Header("fftd_plan_cache_shard_capacity", "gauge", "Plan capacity per LRU shard.")
	for i, sh := range s.PlanCache.Shards {
		pw.Sample("fftd_plan_cache_shard_capacity",
			[]obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(sh.Capacity))
	}
	pw.Header("fftd_plan_cache_shard_evictions_total", "counter", "Plans evicted per LRU shard.")
	for i, sh := range s.PlanCache.Shards {
		pw.Sample("fftd_plan_cache_shard_evictions_total",
			[]obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(sh.Evictions))
	}

	pw.Header("fftd_pool_workers", "gauge", "Worker pool size.")
	pw.Sample("fftd_pool_workers", nil, float64(s.Queue.Workers))
	pw.Header("fftd_pool_queue_capacity", "gauge", "Worker pool queue capacity.")
	pw.Sample("fftd_pool_queue_capacity", nil, float64(s.Queue.Capacity))
	pw.Header("fftd_pool_queue_depth", "gauge", "Jobs waiting for a worker.")
	pw.Sample("fftd_pool_queue_depth", nil, float64(s.Queue.Queued))
	pw.Header("fftd_pool_active", "gauge", "Jobs currently executing (in flight).")
	pw.Sample("fftd_pool_active", nil, float64(s.Queue.Active))
	pw.Header("fftd_pool_submitted_total", "counter", "Jobs accepted into the pool queue.")
	pw.Sample("fftd_pool_submitted_total", nil, float64(s.Queue.Submitted))
	pw.Header("fftd_pool_rejected_total", "counter", "Jobs rejected with 429 because queue and workers were full.")
	pw.Sample("fftd_pool_rejected_total", nil, float64(s.Queue.Rejected))

	// Cluster routing counters, present only in cluster mode so
	// single-node expositions are unchanged.
	if s.Cluster != nil {
		pw.Header("fftd_cluster_local_total", "counter", "Transforms executed on the local shard.")
		pw.Sample("fftd_cluster_local_total", nil, float64(s.Cluster.Local))
		pw.Header("fftd_cluster_forwarded_total", "counter", "Transforms forwarded to a peer.")
		pw.Sample("fftd_cluster_forwarded_total", nil, float64(s.Cluster.Forwarded))
		pw.Header("fftd_cluster_hedged_total", "counter", "Hedged attempts launched by the hedge timer.")
		pw.Sample("fftd_cluster_hedged_total", nil, float64(s.Cluster.Hedged))
		pw.Header("fftd_cluster_failovers_total", "counter", "Attempts launched after a hard peer failure.")
		pw.Sample("fftd_cluster_failovers_total", nil, float64(s.Cluster.Failovers))
		pw.Header("fftd_cluster_retries_total", "counter", "Full preference-list retry rounds.")
		pw.Sample("fftd_cluster_retries_total", nil, float64(s.Cluster.Retries))
		pw.Header("fftd_cluster_breaker_skips_total", "counter", "Peers skipped on an open circuit breaker.")
		pw.Sample("fftd_cluster_breaker_skips_total", nil, float64(s.Cluster.BreakerSkips))
		pw.Header("fftd_cluster_remote_errors_total", "counter", "Application errors returned by peers.")
		pw.Sample("fftd_cluster_remote_errors_total", nil, float64(s.Cluster.RemoteErrors))

		// Every hedged attempt resolves to exactly one outcome, so the
		// three series sum to fftd_cluster_hedged_total.
		pw.Header("fftd_cluster_hedge_outcome_total", "counter", "Hedged attempts by resolution: won the round, lost (errored while it was live), or canceled in flight.")
		for _, o := range []struct {
			outcome string
			v       int64
		}{
			{"won", s.Cluster.HedgeWon},
			{"lost", s.Cluster.HedgeLost},
			{"canceled", s.Cluster.HedgeCanceled},
		} {
			pw.Sample("fftd_cluster_hedge_outcome_total",
				[]obs.Label{{Name: "outcome", Value: o.outcome}}, float64(o.v))
		}

		pw.Header("fftd_cluster_comm_bytes_total", "counter", "Transform-RPC wire bytes moved by this node's routing client (whole frames; heartbeat pings excluded).")
		pw.Sample("fftd_cluster_comm_bytes_total",
			[]obs.Label{{Name: "direction", Value: "received"}}, float64(s.Cluster.WireBytesRecv))
		pw.Sample("fftd_cluster_comm_bytes_total",
			[]obs.Label{{Name: "direction", Value: "sent"}}, float64(s.Cluster.WireBytesSent))

		pw.Header("fftd_comm_roofline_ratio", "gauge", "Achieved cluster communication over the analytical floor (>= 1 once any transform was served remotely; 0 before).")
		pw.Sample("fftd_comm_roofline_ratio", nil, roofline.Ratio(
			float64(s.Cluster.WireBytesSent+s.Cluster.WireBytesRecv),
			float64(s.Cluster.CommFloorBytes)))
	}

	// Pencil (distributed 2D/3D FFT) families. The transport totals are
	// added at exactly the points the coordinator's spans record bytes,
	// so fftd_pencil_wire_bytes_total reconciles against traced span
	// rollups; the roofline gauge compares whole-frame bytes against the
	// analytical transpose floor (>= 1 once any shard crossed a wire).
	if s.Pencil != nil {
		p := s.Pencil
		pw.Header("fftd_pencil_transforms_total", "counter", "Pencil FFT runs completed, by dimensionality.")
		pw.Sample("fftd_pencil_transforms_total", []obs.Label{{Name: "dims", Value: "2"}}, float64(p.Runs2D))
		pw.Sample("fftd_pencil_transforms_total", []obs.Label{{Name: "dims", Value: "3"}}, float64(p.Runs3D))
		pw.Header("fftd_pencil_errors_total", "counter", "Pencil FFT runs that failed.")
		pw.Sample("fftd_pencil_errors_total", nil, float64(p.Errors))
		pw.Header("fftd_pencil_waves_total", "counter", "Column-band waves executed (more waves than runs means out-of-core streaming).")
		pw.Sample("fftd_pencil_waves_total", nil, float64(p.Waves))
		pw.Header("fftd_pencil_cap_retries_total", "counter", "Pencil runs re-planned with narrower column bands after a peer memory-cap rejection.")
		pw.Sample("fftd_pencil_cap_retries_total", nil, float64(p.CapRetries))

		pw.Header("fftd_pencil_rpcs_total", "counter", "Pencil sub-operations issued by this node's coordinator, by stage.")
		for _, st := range []struct {
			stage string
			v     int64
		}{
			{"open", p.RPCsOpen},
			{"rows", p.RPCsRows},
			{"deposit", p.RPCsDeposit},
			{"colfft", p.RPCsColFFT},
			{"read", p.RPCsRead},
			{"close", p.RPCsClose},
		} {
			pw.Sample("fftd_pencil_rpcs_total",
				[]obs.Label{{Name: "stage", Value: st.stage}}, float64(st.v))
		}

		pw.Header("fftd_pencil_wire_bytes_total", "counter", "Pencil wire bytes moved by this node's coordinator (whole frames; in-process calls excluded).")
		pw.Sample("fftd_pencil_wire_bytes_total",
			[]obs.Label{{Name: "direction", Value: "received"}}, float64(p.WireBytesRecv))
		pw.Sample("fftd_pencil_wire_bytes_total",
			[]obs.Label{{Name: "direction", Value: "sent"}}, float64(p.WireBytesSent))
		pw.Header("fftd_pencil_comm_floor_bytes_total", "counter", "Analytical lower bound on pencil communication: sample payload bytes of remote sub-operations.")
		pw.Sample("fftd_pencil_comm_floor_bytes_total", nil, float64(p.CommFloorBytes))
		pw.Header("fftd_pencil_roofline_ratio", "gauge", "Achieved pencil communication over the analytical floor (>= 1 once any shard crossed a wire; 0 before).")
		pw.Sample("fftd_pencil_roofline_ratio", nil, roofline.Ratio(
			float64(p.WireBytesSent+p.WireBytesRecv), float64(p.CommFloorBytes)))
	}
	if s.PencilWorker != nil {
		ws := s.PencilWorker
		pw.Header("fftd_pencil_open_jobs", "gauge", "Pencil band jobs currently open on the local worker.")
		pw.Sample("fftd_pencil_open_jobs", nil, float64(ws.OpenJobs))
		pw.Header("fftd_pencil_band_bytes", "gauge", "Local pencil worker band memory, current and high-water, against its cap.")
		pw.Sample("fftd_pencil_band_bytes", []obs.Label{{Name: "state", Value: "in_use"}}, float64(ws.BytesInUse))
		pw.Sample("fftd_pencil_band_bytes", []obs.Label{{Name: "state", Value: "peak"}}, float64(ws.BytesPeak))
		pw.Sample("fftd_pencil_band_bytes", []obs.Label{{Name: "state", Value: "cap"}}, float64(ws.MemCap))
		pw.Header("fftd_pencil_jobs_rejected_total", "counter", "Pencil band opens rejected by the memory cap or job limit.")
		pw.Sample("fftd_pencil_jobs_rejected_total", nil, float64(ws.Rejected))
		pw.Header("fftd_pencil_jobs_expired_total", "counter", "Pencil band jobs reclaimed by the idle TTL sweep.")
		pw.Sample("fftd_pencil_jobs_expired_total", nil, float64(ws.ExpiredJobs))
	}

	// Per-route latency histogram with the fixed cumulative bounds of
	// latencyBounds plus the mandatory +Inf bucket.
	order, hists := m.routeLatencies()
	pw.Header("fftd_request_duration_seconds", "histogram", "Request wall time by route.")
	for _, route := range order {
		h := hists[route]
		rl := obs.Label{Name: "route", Value: route}
		for i, le := range latencyBounds {
			pw.Sample("fftd_request_duration_seconds_bucket",
				[]obs.Label{rl, {Name: "le", Value: obs.FormatValue(le)}}, float64(h.cumulative[i]))
		}
		pw.Sample("fftd_request_duration_seconds_bucket",
			[]obs.Label{rl, {Name: "le", Value: "+Inf"}}, float64(h.cumulative[len(latencyBounds)]))
		pw.Sample("fftd_request_duration_seconds_sum", []obs.Label{rl}, h.sumSeconds)
		pw.Sample("fftd_request_duration_seconds_count", []obs.Label{rl}, float64(h.count))
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pw.Header("go_goroutines", "gauge", "Number of live goroutines.")
	pw.Sample("go_goroutines", nil, float64(runtime.NumGoroutine()))
	pw.Header("go_memstats_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	pw.Sample("go_memstats_heap_alloc_bytes", nil, float64(ms.HeapAlloc))
	pw.Header("go_memstats_heap_objects", "gauge", "Number of allocated heap objects.")
	pw.Sample("go_memstats_heap_objects", nil, float64(ms.HeapObjects))
	pw.Header("go_gc_cycles_total", "counter", "Completed GC cycles.")
	pw.Sample("go_gc_cycles_total", nil, float64(ms.NumGC))
	pw.Header("go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	pw.Sample("go_gc_pause_seconds_total", nil, float64(ms.PauseTotalNs)/1e9)
	pw.Header("go_gc_pause_last_seconds", "gauge", "Duration of the most recent GC pause.")
	last := 0.0
	if ms.NumGC > 0 {
		last = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
	}
	pw.Sample("go_gc_pause_last_seconds", nil, last)

	return pw.Flush()
}
