package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bits"
	"repro/internal/cluster"
	"repro/internal/cluster/wire"
	"repro/internal/fft"
	"repro/internal/hardware"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/roofline"
	"repro/internal/parfft"
	"repro/internal/perfmodel"
	"repro/internal/permute"
	"repro/internal/report"
)

// ---- /v1/fft ----

// Complex is the wire form of one complex sample: [re, im].
type Complex [2]float64

func toComplex(pairs []Complex) []complex128 {
	out := make([]complex128, len(pairs))
	toComplexInto(out, pairs)
	return out
}

func toComplexInto(dst []complex128, pairs []Complex) {
	for i, p := range pairs {
		dst[i] = complex(p[0], p[1])
	}
}

func fromComplex(xs []complex128) []Complex {
	out := make([]Complex, len(xs))
	for i, x := range xs {
		out[i] = Complex{real(x), imag(x)}
	}
	return out
}

// TransformSpec is one transform of a /v1/fft request. Exactly one of
// Input (complex samples), RealInput or RealInverse must be set.
type TransformSpec struct {
	// Input holds complex samples as [re, im] pairs. Any length n >= 1
	// is accepted: powers of two run the split-radix kernel, other
	// lengths Bluestein's algorithm.
	Input []Complex `json:"input,omitempty"`
	// RealInput holds real samples (length a power of two); the
	// response carries the n/2+1 non-redundant spectrum bins.
	RealInput []float64 `json:"real_input,omitempty"`
	// RealInverse holds the n/2+1 half-spectrum bins of a real signal
	// and requests the inverse real transform: the response carries the
	// n real samples (as [re, 0] pairs). The DC and Nyquist bins must
	// be real-valued — a spectrum of a real signal has no imaginary
	// part there — and the request is rejected otherwise. Setting
	// Inverse alongside RealInput is an error, never a forward
	// spectrum.
	RealInverse []Complex `json:"real_inverse,omitempty"`
	// Inverse requests the inverse transform (complex input only;
	// real inverses use RealInverse).
	Inverse bool `json:"inverse,omitempty"`
	// NoReorder skips the terminal bit-reversal, leaving the spectrum
	// in bit-reversed order (§IV.A's "if the bit-reversal is not
	// needed" pipeline; forward complex power-of-two only).
	NoReorder bool `json:"no_reorder,omitempty"`
}

// FFTRequest is the /v1/fft body: either a single transform (inline
// fields) or a batch (Transforms).
type FFTRequest struct {
	TransformSpec
	Transforms []TransformSpec `json:"transforms,omitempty"`
}

// TransformResult is one transform's response. A per-transform failure
// sets Error and leaves Output empty; the batch itself still succeeds.
type TransformResult struct {
	N      int       `json:"n"`
	Output []Complex `json:"output,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// FFTResponse is the /v1/fft response.
type FFTResponse struct {
	Batch   int               `json:"batch"`
	Results []TransformResult `json:"results"`
}

// executeOp runs one validated transform op against the shared plan
// cache. It is the single local execution path: runTransform reaches it
// for single-node serving and self-owned shards, and ClusterExecutor
// exposes it to peers for forwarded RPCs — which is what makes cluster
// results bit-identical to single-node results. A non-nil dst with
// sufficient capacity is reused for complex output (the HTTP path
// passes pooled scratch); forwarded RPCs pass nil and the result is
// serialized before the buffer would be reused.
//
// Complex transforms accept any length n >= 1: powers of two take the
// split-radix plan, everything else the cached Bluestein AnyPlan.
// NoReorder is the one power-of-two-only option — bit-reversed order
// is undefined for other lengths. Real ops are power-of-two-only (the
// packed half transform needs it) and a real op with Inverse set is a
// genuine real inverse: its Input carries the n/2+1 half-spectrum and
// the result is the real signal, widened to complex for the uniform
// response shape. It is never silently answered with a forward
// spectrum.
func (s *Server) executeOp(_ context.Context, op *wire.TransformOp, dst []complex128) ([]complex128, error) {
	n := op.N()
	if err := s.checkLen(n); err != nil {
		return nil, err
	}
	sized := func(m int) []complex128 {
		if cap(dst) >= m {
			return dst[:m]
		}
		return make([]complex128, m)
	}
	if op.Real {
		if op.NoReorder {
			return nil, badRequest("no_reorder applies to forward complex transforms only")
		}
		p, err := s.cache.RealPlan(n)
		if err != nil {
			return nil, badRequest("real plan: %v", err)
		}
		if op.Inverse {
			if err := p.ValidateSpectrum(op.Input); err != nil {
				return nil, badRequest("real inverse: %v", err)
			}
			rb := getRBuf(n)
			defer putRBuf(rb)
			p.InverseInto(rb.x, op.Input)
			out := sized(n)
			for i, v := range rb.x {
				out[i] = complex(v, 0)
			}
			return out, nil
		}
		return p.ForwardInto(sized(p.SpectrumLen()), op.RealInput), nil
	}
	if !bits.IsPow2(n) {
		if op.NoReorder {
			return nil, badRequest("no_reorder requires a power-of-two length, got %d", n)
		}
		p, err := s.cache.AnyPlan(n)
		if err != nil {
			return nil, badRequest("plan: %v", err)
		}
		out := sized(n)
		if op.Inverse {
			p.Inverse(out, op.Input)
		} else {
			p.Transform(out, op.Input)
		}
		return out, nil
	}
	p, err := s.cache.ComplexPlan(n)
	if err != nil {
		return nil, badRequest("plan: %v", err)
	}
	out := sized(n)
	switch {
	case op.Inverse:
		p.Inverse(out, op.Input)
	case op.NoReorder:
		p.TransformNoReorder(out, op.Input)
	default:
		p.Transform(out, op.Input)
	}
	return out, nil
}

// runTransform executes one transform: validation, then either the
// local plan-cache path or — when a cluster client is installed — the
// consistent-hash ring, which may forward the op to the peer owning its
// shape. The span (traced requests only) carries the transform kind and
// size; untraced requests get the nil-span no-op path, keeping the
// plancache-hit serving path allocation-free.
func (s *Server) runTransform(ctx context.Context, spec TransformSpec) (TransformResult, error) {
	sp := obs.StartChild(ctx, "transform").SetCat(obs.CatCompute)
	defer sp.End()
	populated := 0
	for _, set := range []bool{len(spec.Input) > 0, len(spec.RealInput) > 0, len(spec.RealInverse) > 0} {
		if set {
			populated++
		}
	}
	switch {
	case populated > 1:
		return TransformResult{}, badRequest("transform sets more than one of input, real_input and real_inverse")
	case len(spec.RealInverse) > 0:
		if spec.Inverse || spec.NoReorder {
			return TransformResult{}, badRequest("real_inverse is already the inverse; inverse/no_reorder do not apply")
		}
		h := len(spec.RealInverse)
		if h < 2 {
			return TransformResult{}, badRequest("real_inverse needs at least 2 spectrum bins (n/2+1 for signal length n)")
		}
		n := 2 * (h - 1)
		if sp != nil {
			sp.SetDetail(fmt.Sprintf("real-inverse n=%d", n))
		}
		b := getXBuf(n)
		defer putXBuf(b)
		toComplexInto(b.in[:h], spec.RealInverse)
		op := wire.TransformOp{Real: true, Inverse: true, Input: b.in[:h]}
		out, err := s.dispatchOp(ctx, &op, b.out)
		if err != nil {
			return TransformResult{}, err
		}
		return TransformResult{N: n, Output: fromComplex(out)}, nil
	case len(spec.RealInput) > 0:
		if spec.Inverse {
			return TransformResult{}, badRequest("real_input with inverse is invalid: a real inverse takes the half-spectrum, not samples — pass the n/2+1 bins as real_inverse")
		}
		if spec.NoReorder {
			return TransformResult{}, badRequest("no_reorder applies to complex input only")
		}
		n := len(spec.RealInput)
		if sp != nil {
			sp.SetDetail(fmt.Sprintf("real n=%d", n))
		}
		b := getXBuf(n)
		defer putXBuf(b)
		op := wire.TransformOp{Real: true, RealInput: spec.RealInput}
		out, err := s.dispatchOp(ctx, &op, b.out)
		if err != nil {
			return TransformResult{}, err
		}
		return TransformResult{N: n, Output: fromComplex(out)}, nil
	case len(spec.Input) > 0:
		if spec.Inverse && spec.NoReorder {
			return TransformResult{}, badRequest("inverse and no_reorder are mutually exclusive")
		}
		n := len(spec.Input)
		if sp != nil {
			sp.SetDetail(fmt.Sprintf("complex n=%d inverse=%v", n, spec.Inverse))
		}
		// Pooled scratch: the wire-format conversions own the only
		// per-request allocations left on the local path.
		b := getXBuf(n)
		defer putXBuf(b)
		toComplexInto(b.in, spec.Input)
		op := wire.TransformOp{Inverse: spec.Inverse, NoReorder: spec.NoReorder, Input: b.in}
		out, err := s.dispatchOp(ctx, &op, b.out)
		if err != nil {
			return TransformResult{}, err
		}
		return TransformResult{N: n, Output: fromComplex(out)}, nil
	default:
		return TransformResult{}, badRequest("transform has no input or real_input")
	}
}

// dispatchOp routes one op: through the cluster client when installed
// (the client short-circuits self-owned shapes back to executeOp via
// ClusterExecutor), directly to executeOp otherwise. A peer's
// application-level rejection comes back as a RemoteError and maps to
// 400 — the peer runs the same validation this node would.
func (s *Server) dispatchOp(ctx context.Context, op *wire.TransformOp, dst []complex128) ([]complex128, error) {
	if s.cluster == nil {
		return s.executeOp(ctx, op, dst)
	}
	out, err := s.cluster.Transform(ctx, op)
	if err != nil {
		var remote *cluster.RemoteError
		if errors.As(err, &remote) {
			return nil, badRequest("%s", remote.Msg)
		}
		return nil, err
	}
	return out, nil
}

// checkLen validates a transform length against the configured bound
// (shape validation — power of two where required — is the plan
// constructor's job). A non-positive length means a malformed op, e.g.
// a real inverse whose spectrum payload is too short to name a signal.
func (s *Server) checkLen(n int) error {
	if n < 1 {
		return badRequest("transform length %d must be at least 1", n)
	}
	if n > s.cfg.MaxTransformLen {
		return badRequest("transform length %d exceeds limit %d", n, s.cfg.MaxTransformLen)
	}
	return nil
}

// handleFFT serves single and batch transforms. Each transform of a
// batch is an independent worker-pool job, so a batch fans out across
// the pool and large batches get the pool's backpressure.
func (s *Server) handleFFT(w http.ResponseWriter, r *http.Request) {
	var req FFTRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	specs := req.Transforms
	single := len(specs) == 0
	if single {
		specs = []TransformSpec{req.TransformSpec}
	}
	if len(specs) > s.cfg.MaxBatch {
		writeError(w, badRequest("batch of %d exceeds limit %d", len(specs), s.cfg.MaxBatch))
		return
	}

	results := make([]TransformResult, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := specs[i]
			errs[i] = s.pool.do(r.Context(), func() {
				res, err := s.runTransform(r.Context(), spec)
				if err != nil {
					res = TransformResult{Error: err.Error()}
				} else {
					s.metrics.transforms.Add(1)
				}
				results[i] = res
			})
		}(i)
	}
	wg.Wait()

	// Pool-level failures (drain, timeout, worker panic) fail the whole
	// request: the batch result would otherwise silently hold holes.
	for _, err := range errs {
		if err != nil {
			if errors.Is(err, ErrDraining) {
				s.metrics.drained.Add(1)
			}
			writeError(w, err)
			return
		}
	}
	writeJSON(w, FFTResponse{Batch: len(specs), Results: results})
}

// ---- /v1/simulate ----

// SimulateRequest selects one word-level simulation scenario, the
// service form of `cmd/netsim`.
type SimulateRequest struct {
	// Network is mesh, hypercube or hypermesh.
	Network string `json:"network"`
	// N is the node (and element) count; a power of two, and a perfect
	// square for mesh/hypermesh.
	N int `json:"n"`
	// Wrap selects torus links on the mesh; nil means true.
	Wrap *bool `json:"wrap,omitempty"`
	// Scenario is fft, bitreversal, random or traffic.
	Scenario string `json:"scenario"`
	// Seed drives the scenario's RNG; same seed, same result.
	Seed int64 `json:"seed,omitempty"`
	// SkipBitReversal drops the FFT's terminal reversal (fft only).
	SkipBitReversal bool `json:"skip_bit_reversal,omitempty"`
}

// normalize fills defaults and returns the coalescing key: simulations
// are deterministic functions of the normalized request, so identical
// concurrent queries share one execution.
func (r SimulateRequest) normalize() (SimulateRequest, string) {
	if r.Network == "" {
		r.Network = "hypermesh"
	}
	if r.Scenario == "" {
		r.Scenario = "fft"
	}
	if r.Wrap == nil {
		t := true
		r.Wrap = &t
	}
	key := fmt.Sprintf("simulate|%s|%d|%v|%s|%d|%v",
		r.Network, r.N, *r.Wrap, r.Scenario, r.Seed, r.SkipBitReversal)
	return r, key
}

// SimulateResponse reports one simulation run.
type SimulateResponse struct {
	Network  string `json:"network"`
	Machine  string `json:"machine"`
	N        int    `json:"n"`
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`

	// FFT scenario fields.
	ButterflySteps   int     `json:"butterfly_steps,omitempty"`
	BitReversalSteps int     `json:"bit_reversal_steps,omitempty"`
	ComputeSteps     int     `json:"compute_steps,omitempty"`
	MaxError         float64 `json:"max_error,omitempty"`

	// Routing scenario fields.
	RouteSteps int `json:"route_steps,omitempty"`

	// Traffic scenario fields.
	DeliveredRate float64 `json:"delivered_rate,omitempty"`
	AvgLatency    float64 `json:"avg_latency,omitempty"`

	// Communication-roofline fields (fft scenario): simulated payload
	// volume, the BSP lower bound for the same butterfly, and
	// achieved/optimal — identical across networks for one schedule
	// because the word count is topology-invariant (netsim.Stats.Words).
	CommBytes         int64   `json:"comm_bytes,omitempty"`
	CommFloorBytes    int64   `json:"comm_floor_bytes,omitempty"`
	CommRooflineRatio float64 `json:"comm_roofline_ratio,omitempty"`

	TotalSteps int          `json:"total_steps"`
	Stats      netsim.Stats `json:"stats"`

	// Table is the same report rendered by the CLI, machine-readable.
	Table *report.Table `json:"table,omitempty"`

	// Coalesced is true when this response was produced by another
	// identical in-flight request.
	Coalesced bool `json:"coalesced,omitempty"`
}

// buildMachine constructs the simulated machine for a request. A
// non-nil tracer attaches machine-operation spans to the request's
// span tree.
func buildMachine(network string, n int, wrap bool, tr *obs.Tracer) (netsim.Machine[complex128], error) {
	if !bits.IsPow2(n) || n < 4 {
		return nil, badRequest("n = %d must be a power of two >= 4", n)
	}
	cfg := netsim.Config{Obs: tr}
	switch network {
	case "mesh", "hypermesh":
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			return nil, badRequest("%s needs a square n, got %d", network, n)
		}
		if network == "mesh" {
			return netsim.NewMesh[complex128](side, wrap, cfg)
		}
		return netsim.NewHypermesh[complex128](side, 2, cfg)
	case "hypercube":
		return netsim.NewHypercube[complex128](bits.Log2(n), cfg)
	default:
		return nil, badRequest("unknown network %q", network)
	}
}

// runSimulation executes one scenario; it is the flight-group leader's
// workload and runs on the worker pool. The leader's tracer (when the
// request is traced) follows the machine down into netsim and parfft,
// so a slow simulation's capture shows per-rank and per-route spans.
func (s *Server) runSimulation(ctx context.Context, req SimulateRequest) (*SimulateResponse, error) {
	if req.N > s.cfg.MaxSimNodes {
		return nil, badRequest("n = %d exceeds simulation limit %d", req.N, s.cfg.MaxSimNodes)
	}
	tr := obs.FromContext(ctx)
	rng := rand.New(rand.NewSource(req.Seed))
	resp := &SimulateResponse{
		Network: req.Network, N: req.N, Scenario: req.Scenario, Seed: req.Seed,
	}
	switch req.Scenario {
	case "fft":
		m, err := buildMachine(req.Network, req.N, *req.Wrap, tr)
		if err != nil {
			return nil, err
		}
		x := make([]complex128, req.N)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		res, err := parfft.Run(m, x, parfft.Options{
			SkipBitReversal: req.SkipBitReversal,
			Plans:           s.cache.Source(),
			Tracer:          tr,
		})
		if err != nil {
			return nil, err
		}
		want := make([]complex128, req.N)
		plan, err := s.cache.ComplexPlan(req.N)
		if err != nil {
			return nil, err
		}
		if req.SkipBitReversal {
			plan.TransformNoReorder(want, x)
		} else {
			plan.Transform(want, x)
		}
		resp.Machine = m.Name()
		resp.ButterflySteps = res.ButterflySteps
		resp.BitReversalSteps = res.BitReversalSteps
		resp.ComputeSteps = res.ComputeSteps
		resp.TotalSteps = res.TotalSteps()
		resp.MaxError = fft.MaxAbsDiff(res.Output, want)
		resp.Stats = m.Stats()
		resp.CommBytes = resp.Stats.CommBytes()
		resp.CommFloorBytes = int64(roofline.ButterflyBytes(req.N, req.N, netsim.WordBytes))
		resp.CommRooflineRatio = netsim.CommRoofline(req.N, resp.Stats)
		t := report.New(fmt.Sprintf("%d-point distributed FFT on %s", req.N, m.Name()),
			"quantity", "value")
		t.MustAddRow("butterfly data-transfer steps", strconv.Itoa(res.ButterflySteps))
		t.MustAddRow("bit-reversal data-transfer steps", strconv.Itoa(res.BitReversalSteps))
		t.MustAddRow("total data-transfer steps", strconv.Itoa(res.TotalSteps()))
		t.MustAddRow("compute steps", strconv.Itoa(res.ComputeSteps))
		t.MustAddRow("max |error| vs serial FFT", fmt.Sprintf("%.3g", resp.MaxError))
		t.MustAddRow("comm roofline (achieved/optimal bytes)", fmt.Sprintf("%.2f", resp.CommRooflineRatio))
		resp.Table = t
		return resp, nil

	case "bitreversal", "random":
		m, err := buildMachine(req.Network, req.N, *req.Wrap, tr)
		if err != nil {
			return nil, err
		}
		var p permute.Permutation
		if req.Scenario == "bitreversal" {
			p = permute.BitReversal(req.N)
		} else {
			p = permute.Random(req.N, rng)
		}
		steps, err := m.Route(p)
		if err != nil {
			return nil, err
		}
		resp.Machine = m.Name()
		resp.RouteSteps = steps
		resp.TotalSteps = steps
		resp.Stats = m.Stats()
		t := report.New(fmt.Sprintf("%s permutation on %s (N = %d)", req.Scenario, m.Name(), req.N),
			"quantity", "value")
		t.MustAddRow("data-transfer steps (makespan)", strconv.Itoa(steps))
		t.MustAddRow("total link traversals", strconv.Itoa(resp.Stats.LinkTraversals))
		t.MustAddRow("max queue length", strconv.Itoa(resp.Stats.MaxQueue))
		resp.Table = t
		return resp, nil

	case "traffic":
		opts := netsim.TrafficOptions{Rate: 0.2, Warmup: 200, Measure: 800, Seed: req.Seed}
		var res *netsim.TrafficResult
		var err error
		side := 1
		for side*side < req.N {
			side++
		}
		switch req.Network {
		case "mesh":
			res, err = netsim.NewMeshTraffic(side, opts)
		case "hypercube":
			res, err = netsim.NewHypercubeTraffic(bits.Log2(req.N), opts)
		case "hypermesh":
			res, err = netsim.NewHypermeshTraffic(side, opts)
		default:
			return nil, badRequest("unknown network %q", req.Network)
		}
		if err != nil {
			return nil, badRequest("traffic: %v", err)
		}
		resp.Machine = req.Network
		resp.DeliveredRate = res.DeliveredRate
		resp.AvgLatency = res.AvgLatency
		resp.Stats = netsim.Stats{MaxQueue: res.MaxQueue}
		t := report.New(fmt.Sprintf("uniform random traffic on %s (N = %d)", req.Network, req.N),
			"quantity", "value")
		t.MustAddRow("delivered rate (pkts/node/step)", fmt.Sprintf("%.3f", res.DeliveredRate))
		t.MustAddRow("average latency (steps)", fmt.Sprintf("%.2f", res.AvgLatency))
		t.MustAddRow("max queue", strconv.Itoa(res.MaxQueue))
		resp.Table = t
		return resp, nil

	default:
		return nil, badRequest("unknown scenario %q", req.Scenario)
	}
}

// handleSimulate coalesces identical queries, then runs the simulation
// on the worker pool under the request deadline.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest("decode: %v", err))
		return
	}
	req, key := req.normalize()
	v, shared, err := s.flights.do(key, func() (any, error) {
		var resp *SimulateResponse
		var runErr error
		if poolErr := s.pool.do(r.Context(), func() {
			resp, runErr = s.runSimulation(r.Context(), req)
		}); poolErr != nil {
			return nil, poolErr
		}
		if runErr == nil {
			s.metrics.simulations.Add(1)
		}
		return resp, runErr
	})
	if err != nil {
		if errors.Is(err, ErrDraining) {
			s.metrics.drained.Add(1)
		}
		writeError(w, err)
		return
	}
	if shared {
		s.metrics.coalesced.Add(1)
	}
	resp := *v.(*SimulateResponse)
	resp.Coalesced = shared
	writeJSON(w, resp)
}

// ---- /v1/compare ----

// CompareResponse carries the paper's comparison tables evaluated at
// one size: the JSON form of cmd/fftrepro's Table 1A/1B/2A/2B and §V
// bisection output.
type CompareResponse struct {
	N         int                      `json:"n"`
	Table1A   []perfmodel.Table1ARow   `json:"table_1a,omitempty"`
	Table1B   []perfmodel.Table1BRow   `json:"table_1b,omitempty"`
	Table2A   []perfmodel.Table2ARow   `json:"table_2a,omitempty"`
	Table2B   []perfmodel.Table2BRow   `json:"table_2b,omitempty"`
	Bisection []perfmodel.BisectionRow `json:"bisection,omitempty"`
	Coalesced bool                     `json:"coalesced,omitempty"`
}

// handleCompare serves GET /v1/compare?n=4096&table=2a (table defaults
// to all). Identical concurrent queries are coalesced.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	n := 4096
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, badRequest("n: %v", err))
			return
		}
		n = v
	}
	which := r.URL.Query().Get("table")
	if which == "" {
		which = "all"
	}
	key := fmt.Sprintf("compare|%d|%s", n, which)
	v, shared, err := s.flights.do(key, func() (any, error) {
		var resp *CompareResponse
		var runErr error
		if poolErr := s.pool.do(r.Context(), func() {
			resp, runErr = buildCompare(n, which)
		}); poolErr != nil {
			return nil, poolErr
		}
		return resp, runErr
	})
	if err != nil {
		writeError(w, err)
		return
	}
	if shared {
		s.metrics.coalesced.Add(1)
	}
	resp := *v.(*CompareResponse)
	resp.Coalesced = shared
	writeJSON(w, resp)
}

// buildCompare evaluates the requested tables at size n.
func buildCompare(n int, which string) (*CompareResponse, error) {
	resp := &CompareResponse{N: n}
	want := func(t string) bool { return which == "all" || which == t }
	var err error
	wrap := func(table string, e error) error {
		if e == nil {
			return nil
		}
		return badRequest("table %s at n=%d: %v", table, n, e)
	}
	matched := false
	if want("1a") {
		matched = true
		if resp.Table1A, err = perfmodel.Table1A(n); err != nil {
			return nil, wrap("1a", err)
		}
	}
	if want("1b") {
		matched = true
		if resp.Table1B, err = perfmodel.Table1B(n, hardware.GaAs64); err != nil {
			return nil, wrap("1b", err)
		}
	}
	if want("2a") {
		matched = true
		if resp.Table2A, err = perfmodel.Table2A(n); err != nil {
			return nil, wrap("2a", err)
		}
	}
	if want("2b") {
		matched = true
		if resp.Table2B, err = perfmodel.Table2B(n, hardware.GaAs64, hardware.DefaultPacketBits); err != nil {
			return nil, wrap("2b", err)
		}
	}
	if want("bisection") {
		matched = true
		if resp.Bisection, err = perfmodel.BisectionTable(n, hardware.GaAs64); err != nil {
			return nil, wrap("bisection", err)
		}
	}
	if !matched {
		return nil, badRequest("unknown table %q (want 1a, 1b, 2a, 2b, bisection or all)", which)
	}
	return resp, nil
}

// ---- /healthz and /metrics ----

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status string `json:"status"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, HealthResponse{Status: "ok"})
}

// handleReadyz reports readiness, as distinct from liveness: a 200
// while serving, a 503 once StartDrain has been called. Load balancers
// and cluster peers route on readiness; orchestrators restart on
// liveness — a draining process is alive but not ready.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(HealthResponse{Status: "draining"})
		return
	}
	writeJSON(w, HealthResponse{Status: "ready"})
}

// wantsPromText decides the /metrics representation from the Accept
// header: any explicit preference for a text or OpenMetrics form gets
// the Prometheus exposition; everything else (including no header and
// */*) keeps the original JSON body.
func wantsPromText(accept string) bool {
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.MetricsSnapshot()
	if wantsPromText(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.writePrometheus(w, snap)
		return
	}
	writeJSON(w, snap)
}

// handleSlow serves the slow-trace ring: the most recent captured
// request span trees (remote children included), newest first, plus the
// cluster's communication-roofline ratio when one is routing.
// ?format=chrome re-renders the same ring as Chrome trace_event JSON —
// every captured tree, remote children grafted in place, loadable
// directly in chrome://tracing or Perfetto.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	traces := s.slow.list()
	if r.URL.Query().Get("format") == "chrome" {
		// Each capture has its own tracer, so span IDs restart at 1 per
		// trace; offset them so the flattened set keeps distinct trees
		// (and therefore distinct tracks) in the viewer.
		var spans []obs.SpanData
		offset := 0
		for _, ct := range traces {
			maxID := 0
			for _, sp := range ct.Spans {
				sp.ID += offset
				if sp.Parent != 0 {
					sp.Parent += offset
				}
				if sp.ID > maxID {
					maxID = sp.ID
				}
				spans = append(spans, sp)
			}
			offset = maxID
		}
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteChromeSpans(w, spans, time.Time{}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	body := SlowTraces{
		Captured: s.metrics.slowCaptured.Load(),
		Traces:   traces,
	}
	if s.cluster != nil {
		m := s.cluster.Metrics()
		body.CommRooflineRatio = roofline.Ratio(
			float64(m.WireBytesSent+m.WireBytesRecv), float64(m.CommFloorBytes))
	}
	writeJSON(w, body)
}
