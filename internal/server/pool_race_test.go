package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestWorkerPoolSubmitCloseRace hammers do() from many goroutines while
// close() drains the pool mid-flight. Run under the race detector (make
// race) this exercises the closed-flag/RWMutex protocol that keeps a
// late submit from sending on the closed jobs channel. Every submit must
// resolve to success, a context error, ErrSaturated, or ErrDraining —
// never a panic or a hang.
func TestWorkerPoolSubmitCloseRace(t *testing.T) {
	p := newWorkerPool(4, 8)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
				err := p.do(ctx, func() { time.Sleep(50 * time.Microsecond) })
				cancel()
				switch {
				case err == nil:
				case errors.Is(err, ErrDraining):
					return // pool closed under us: the expected drain outcome
				case errors.Is(err, ErrSaturated):
				case errors.Is(err, context.DeadlineExceeded):
				case errors.Is(err, context.Canceled):
				default:
					t.Errorf("unexpected submit error: %v", err)
					return
				}
			}
		}()
	}

	// Let submits build up, then drain while they are still racing in.
	time.Sleep(5 * time.Millisecond)
	p.close()
	close(stop)
	wg.Wait()

	// close is documented idempotent; a second drain must not panic.
	p.close()

	if err := p.do(context.Background(), func() {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close submit: err = %v, want ErrDraining", err)
	}
}
