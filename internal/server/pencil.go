package server

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/pencil"
)

// localPencilWorker names the in-process worker of the single-node
// pencil transport. Cluster mode replaces the name with real ring
// addresses.
const localPencilWorker = "local"

// ---- /v1/fft2d ----

// FFT2DRequest asks for one multidimensional FFT over row-major
// complex input. Rows x Cols is a 2D transform; Depth > 1 extends it to
// a Rows x Cols x Depth 3D transform (input ordered x, then y, then z).
// The request always runs through the pencil coordinator: single-node
// it is served by the in-process worker, in cluster mode the row slabs
// and column bands spread across the ring and the transpose travels the
// wire protocol.
type FFT2DRequest struct {
	Rows    int       `json:"rows"`
	Cols    int       `json:"cols"`
	Depth   int       `json:"depth,omitempty"`
	Input   []Complex `json:"input"`
	Inverse bool      `json:"inverse,omitempty"`
}

// FFT2DResponse carries the transformed array plus the run's
// distribution and communication accounting — the serving-layer view of
// the paper's partitioned-butterfly cost model.
type FFT2DResponse struct {
	Rows    int  `json:"rows"`
	Cols    int  `json:"cols"`
	Depth   int  `json:"depth,omitempty"`
	Inverse bool `json:"inverse,omitempty"`
	// Distributed is true when more than one worker shared the run.
	Distributed bool `json:"distributed"`
	Workers     int  `json:"workers"`
	Bands       int  `json:"bands"`
	// Waves > 1 means the transform ran out of core: column bands were
	// processed in batches bounded by the per-node memory cap.
	Waves int `json:"waves"`
	// Wire accounting: whole frames moved by pencil sub-operations, the
	// analytical transpose floor, and achieved/floor (>= 1 whenever any
	// shard crossed the wire; 0 for a purely in-process run).
	WireBytesSent     int64     `json:"wire_bytes_sent"`
	WireBytesRecv     int64     `json:"wire_bytes_recv"`
	CommFloorBytes    int64     `json:"comm_floor_bytes"`
	CommRooflineRatio float64   `json:"comm_roofline_ratio"`
	Output            []Complex `json:"output"`
}

// pencilWorkers returns the schedule for one run: in cluster mode the
// ring members that can actually serve pencil shards — self plus every
// peer that advertised wire v2 — and the in-process worker otherwise.
// Pencil frames are v2-only, so one v1-only straggler in the ring must
// shrink the schedule, not fail every run.
func (s *Server) pencilWorkers(ctx context.Context) []string {
	if s.cluster == nil {
		return []string{localPencilWorker}
	}
	self := s.cluster.Registry().Self()
	members := s.cluster.Registry().Ring().Members()
	workers := make([]string, 0, len(members))
	for _, m := range members {
		if m == self || s.cluster.PencilCapable(ctx, m) {
			workers = append(workers, m)
		}
	}
	if len(workers) == 0 {
		// Ring empty (every peer marked down) or no capable member:
		// serve on self alone.
		return []string{self}
	}
	return workers
}

// handleFFT2D serves distributed 2D/3D pencil FFTs. The whole run is
// one worker-pool job: coordinating a pencil run is itself
// compute-bearing work (row FFTs on the self-owned slab run in
// process), so it gets the pool's backpressure like any transform.
func (s *Server) handleFFT2D(w http.ResponseWriter, r *http.Request) {
	var req FFT2DRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	depth := req.Depth
	if depth == 0 {
		depth = 1
	}
	if req.Rows < 1 || req.Cols < 1 || depth < 1 {
		writeError(w, badRequest("shape %dx%dx%d: sides must be at least 1", req.Rows, req.Cols, depth))
		return
	}
	total := req.Rows * req.Cols * depth
	if err := s.checkLen(total); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Input) != total {
		writeError(w, badRequest("input has %d samples, shape %dx%dx%d needs %d",
			len(req.Input), req.Rows, req.Cols, depth, total))
		return
	}
	shape := pencil.Shape2D(req.Rows, req.Cols)
	if depth > 1 {
		shape = pencil.Shape3D(req.Rows, req.Cols, depth)
	}

	var resp *FFT2DResponse
	var runErr error
	poolErr := s.pool.do(r.Context(), func() {
		in := toComplex(req.Input)
		out := make([]complex128, total)
		workers := s.pencilWorkers(r.Context())
		stats, err := pencil.Run(r.Context(), pencil.Config{
			Shape:     shape,
			Inverse:   req.Inverse,
			Workers:   workers,
			Transport: s.pencilTransport,
			MemCap:    s.cfg.PencilMemCap,
			Metrics:   s.pencilMetrics,
		}, pencil.SliceSource{Data: in, Cols: shape.Cols}, pencil.SliceSink{Data: out, Cols: shape.Cols})
		if err != nil {
			var remote *cluster.RemoteError
			switch {
			case errors.As(err, &remote) && pencil.IsBusyMsg(remote.Msg):
				// The peer rejected on load or reclaimed state (memory
				// cap, job limit, TTL expiry) — transient and retryable,
				// not the caller's error.
				runErr = unavailable("%s", remote.Msg)
			case errors.As(err, &remote):
				// The peer rejected the run's shape; the same validation
				// would fail anywhere, so it is the caller's error.
				runErr = badRequest("%s", remote.Msg)
			case pencil.IsBusyMsg(err.Error()):
				// The same transient rejections from the in-process
				// worker (single-node mode has no RemoteError wrapper).
				runErr = unavailable("%s", err.Error())
			default:
				runErr = err
			}
			return
		}
		resp = &FFT2DResponse{
			Rows:              req.Rows,
			Cols:              req.Cols,
			Depth:             req.Depth,
			Inverse:           req.Inverse,
			Distributed:       stats.Workers > 1,
			Workers:           stats.Workers,
			Bands:             stats.Bands,
			Waves:             stats.Waves,
			WireBytesSent:     stats.WireBytesSent,
			WireBytesRecv:     stats.WireBytesRecv,
			CommFloorBytes:    stats.CommFloorBytes,
			CommRooflineRatio: stats.RooflineRatio,
			Output:            fromComplex(out),
		}
	})
	if poolErr != nil {
		if errors.Is(poolErr, ErrDraining) {
			s.metrics.drained.Add(1)
		}
		writeError(w, poolErr)
		return
	}
	if runErr != nil {
		writeError(w, runErr)
		return
	}
	s.metrics.transforms.Add(1)
	writeJSON(w, resp)
}
