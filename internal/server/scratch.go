package server

import "sync"

// xbuf is a pooled pair of complex scratch buffers sized for one
// transform: in receives the decoded samples and out the spectrum. The
// transform handlers are the service's hot path — every request used to
// allocate (and garbage-collect) two n-element complex slices; pooling
// them keeps steady-state request processing off the allocator for the
// common case of repeated transform sizes.
type xbuf struct {
	in, out []complex128
}

var xbufPool = sync.Pool{New: func() any { return new(xbuf) }}

// getXBuf returns a scratch pair with both buffers sized to n. The
// contents are stale; callers must overwrite in before reading out.
func getXBuf(n int) *xbuf {
	b := xbufPool.Get().(*xbuf)
	if cap(b.in) < n {
		b.in = make([]complex128, n)
		b.out = make([]complex128, n)
	}
	b.in = b.in[:n]
	b.out = b.out[:n]
	return b
}

// putXBuf returns a scratch pair to the pool. The caller must not keep
// references to b.in or b.out past this call.
func putXBuf(b *xbuf) { xbufPool.Put(b) }
