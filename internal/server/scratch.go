package server

import "sync"

// xbuf is a pooled pair of complex scratch buffers sized for one
// transform: in receives the decoded samples and out the spectrum. The
// transform handlers are the service's hot path — every request used to
// allocate (and garbage-collect) two n-element complex slices; pooling
// them keeps steady-state request processing off the allocator for the
// common case of repeated transform sizes.
type xbuf struct {
	in, out []complex128
}

var xbufPool = sync.Pool{New: func() any { return new(xbuf) }}

// getXBuf returns a scratch pair with both buffers sized to n. The
// contents are stale; callers must overwrite in before reading out.
func getXBuf(n int) *xbuf {
	b := xbufPool.Get().(*xbuf)
	if cap(b.in) < n {
		b.in = make([]complex128, n)
		b.out = make([]complex128, n)
	}
	b.in = b.in[:n]
	b.out = b.out[:n]
	return b
}

// putXBuf returns a scratch pair to the pool. The caller must not keep
// references to b.in or b.out past this call.
func putXBuf(b *xbuf) { xbufPool.Put(b) }

// rbuf is a pooled real-sample scratch buffer: the real inverse path
// synthesizes n float64 samples before widening them into the complex
// response, and pooling the intermediate keeps that path off the
// allocator too.
type rbuf struct {
	x []float64
}

var rbufPool = sync.Pool{New: func() any { return new(rbuf) }}

// getRBuf returns a real scratch buffer sized to n with stale contents.
func getRBuf(n int) *rbuf {
	b := rbufPool.Get().(*rbuf)
	if cap(b.x) < n {
		b.x = make([]float64, n)
	}
	b.x = b.x[:n]
	return b
}

// putRBuf returns a real scratch buffer to the pool. The caller must
// not keep references to b.x past this call.
func putRBuf(b *rbuf) { rbufPool.Put(b) }
