package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plancache"
	"repro/internal/trace"
)

// Metrics holds the daemon's expvar-style counters: request counts per
// route, response classes, work counters, plan-cache statistics, queue
// depth and a latency histogram. GET /metrics renders a Snapshot.
type Metrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[string]*atomic.Int64 // by route pattern

	ok2xx, client4xx, server5xx atomic.Int64

	transforms  atomic.Int64 // individual transforms served by /v1/fft
	simulations atomic.Int64 // simulate runs actually executed
	coalesced   atomic.Int64 // requests that shared another's flight
	drained     atomic.Int64 // requests rejected during drain

	latency *trace.Histogram
}

func newMetrics(latencyWindow int) *Metrics {
	return &Metrics{
		start:    time.Now(),
		requests: make(map[string]*atomic.Int64),
		latency:  trace.NewHistogram(latencyWindow),
	}
}

// counter returns the per-route request counter, creating it on first
// use.
func (m *Metrics) counter(route string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.requests[route]
	if !ok {
		c = &atomic.Int64{}
		m.requests[route] = c
	}
	return c
}

// observe records one finished request: its route, response status
// class and wall time.
func (m *Metrics) observe(route string, status int, elapsed time.Duration) {
	m.counter(route).Add(1)
	switch {
	case status >= 500:
		m.server5xx.Add(1)
	case status >= 400:
		m.client4xx.Add(1)
	default:
		m.ok2xx.Add(1)
	}
	m.latency.Observe(elapsed)
}

// Snapshot is the JSON body of GET /metrics.
type Snapshot struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Requests      map[string]int64        `json:"requests"`
	Responses     map[string]int64        `json:"responses"`
	Transforms    int64                   `json:"transforms"`
	Simulations   int64                   `json:"simulations"`
	Coalesced     int64                   `json:"coalesced"`
	Drained       int64                   `json:"drained"`
	PlanCache     plancache.Stats         `json:"plan_cache"`
	Queue         poolStats               `json:"queue"`
	Latency       trace.HistogramSnapshot `json:"latency"`
	RouteOrder    []string                `json:"-"`
}

// snapshot gathers every counter consistently enough for monitoring.
func (m *Metrics) snapshot(cache *plancache.Cache, pool *workerPool) Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      map[string]int64{},
		Responses: map[string]int64{
			"2xx": m.ok2xx.Load(),
			"4xx": m.client4xx.Load(),
			"5xx": m.server5xx.Load(),
		},
		Transforms:  m.transforms.Load(),
		Simulations: m.simulations.Load(),
		Coalesced:   m.coalesced.Load(),
		Drained:     m.drained.Load(),
		Latency:     m.latency.Snapshot(),
	}
	m.mu.Lock()
	for route, c := range m.requests {
		s.Requests[route] = c.Load()
	}
	m.mu.Unlock()
	for route := range s.Requests {
		s.RouteOrder = append(s.RouteOrder, route)
	}
	sort.Strings(s.RouteOrder)
	if cache != nil {
		s.PlanCache = cache.Stats()
	}
	if pool != nil {
		s.Queue = pool.stats()
	}
	return s
}
