package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/pencil"
	"repro/internal/plancache"
	"repro/internal/trace"
)

// latencyBounds are the cumulative upper bounds (seconds) of the
// per-route Prometheus latency histogram, spanning 100µs to 10s — the
// range between a plancache-hit transform and a near-timeout
// simulation. The implicit +Inf bucket is added at exposition time.
var latencyBounds = [numLatencyBounds]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

const numLatencyBounds = 16

// bucketHist is a fixed-bound cumulative histogram in the Prometheus
// style: counts[i] counts observations <= latencyBounds[i]; the
// overflow slot counts the rest. All fields are atomics so observation
// never takes a lock.
type bucketHist struct {
	counts [numLatencyBounds + 1]atomic.Int64
	sumNs  atomic.Int64
	count  atomic.Int64
}

func (h *bucketHist) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBounds[:], sec)
	// SearchFloat64s returns the first i with bounds[i] >= sec, which is
	// exactly the Prometheus le-bucket; equality lands in the bucket.
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// bucketSnapshot is a consistent-enough read for exposition: cumulative
// counts per bound plus the +Inf total.
type bucketSnapshot struct {
	cumulative [numLatencyBounds + 1]int64
	sumSeconds float64
	count      int64
}

func (h *bucketHist) snapshot() bucketSnapshot {
	var s bucketSnapshot
	running := int64(0)
	for i := range h.counts {
		running += h.counts[i].Load()
		s.cumulative[i] = running
	}
	s.sumSeconds = float64(h.sumNs.Load()) / 1e9
	s.count = h.count.Load()
	return s
}

// routeMetrics is the per-route slice of the metrics: a request counter
// and a latency bucket histogram.
type routeMetrics struct {
	count   atomic.Int64
	latency bucketHist
}

// Metrics holds the daemon's expvar-style counters: request counts and
// latency buckets per route, response classes, work counters,
// plan-cache statistics, queue depth and a windowed latency histogram
// for quantiles. GET /metrics renders a Snapshot (JSON) or a Prometheus
// text exposition, depending on the Accept header.
type Metrics struct {
	start time.Time

	mu     sync.Mutex
	routes map[string]*routeMetrics // by route pattern

	ok2xx, client4xx, server5xx atomic.Int64

	transforms  atomic.Int64 // individual transforms served by /v1/fft
	simulations atomic.Int64 // simulate runs actually executed
	coalesced   atomic.Int64 // requests that shared another's flight
	drained     atomic.Int64 // requests rejected during drain

	slowCaptured atomic.Int64 // requests captured into the slow-trace ring

	latency *trace.Histogram
}

func newMetrics(latencyWindow int) *Metrics {
	return &Metrics{
		start:   time.Now(),
		routes:  make(map[string]*routeMetrics),
		latency: trace.NewHistogram(latencyWindow),
	}
}

// route returns the per-route metrics, creating them on first use.
func (m *Metrics) route(route string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm, ok := m.routes[route]
	if !ok {
		rm = &routeMetrics{}
		m.routes[route] = rm
	}
	return rm
}

// observe records one finished request: its route, response status
// class and wall time.
func (m *Metrics) observe(route string, status int, elapsed time.Duration) {
	rm := m.route(route)
	rm.count.Add(1)
	rm.latency.observe(elapsed)
	switch {
	case status >= 500:
		m.server5xx.Add(1)
	case status >= 400:
		m.client4xx.Add(1)
	default:
		m.ok2xx.Add(1)
	}
	m.latency.Observe(elapsed)
}

// Snapshot is the JSON body of GET /metrics.
type Snapshot struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Requests      map[string]int64        `json:"requests"`
	Responses     map[string]int64        `json:"responses"`
	Transforms    int64                   `json:"transforms"`
	Simulations   int64                   `json:"simulations"`
	Coalesced     int64                   `json:"coalesced"`
	Drained       int64                   `json:"drained"`
	SlowCaptured  int64                   `json:"slow_captured"`
	PlanCache     plancache.Stats         `json:"plan_cache"`
	Queue         poolStats               `json:"queue"`
	Latency       trace.HistogramSnapshot `json:"latency"`
	// Cluster carries the routing client's counters; nil when the
	// server runs single-node.
	Cluster *cluster.ClientMetrics `json:"cluster,omitempty"`
	// Pencil counts /v1/fft2d coordinator activity; PencilWorker is the
	// local band worker's memory and job gauges.
	Pencil       *pencil.MetricsSnapshot `json:"pencil,omitempty"`
	PencilWorker *pencil.WorkerStats     `json:"pencil_worker,omitempty"`
	RouteOrder   []string                `json:"-"`
}

// snapshot gathers every counter consistently enough for monitoring.
// RouteOrder is derived inside the same critical section that reads the
// route map, so the sorted order always matches the Requests keys even
// if a first-seen route is racing in (the map read and the key listing
// cannot interleave with an insertion).
func (m *Metrics) snapshot(cache *plancache.Cache, pool *workerPool) Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      map[string]int64{},
		Responses: map[string]int64{
			"2xx": m.ok2xx.Load(),
			"4xx": m.client4xx.Load(),
			"5xx": m.server5xx.Load(),
		},
		Transforms:   m.transforms.Load(),
		Simulations:  m.simulations.Load(),
		Coalesced:    m.coalesced.Load(),
		Drained:      m.drained.Load(),
		SlowCaptured: m.slowCaptured.Load(),
		Latency:      m.latency.Snapshot(),
	}
	m.mu.Lock()
	for route, rm := range m.routes {
		s.Requests[route] = rm.count.Load()
		s.RouteOrder = append(s.RouteOrder, route)
	}
	m.mu.Unlock()
	sort.Strings(s.RouteOrder)
	if cache != nil {
		s.PlanCache = cache.Stats()
	}
	if pool != nil {
		s.Queue = pool.stats()
	}
	return s
}

// routeLatencies returns each route's bucket snapshot in sorted route
// order, for deterministic Prometheus exposition.
func (m *Metrics) routeLatencies() (order []string, hists map[string]bucketSnapshot) {
	hists = map[string]bucketSnapshot{}
	m.mu.Lock()
	for route, rm := range m.routes {
		order = append(order, route)
		hists[route] = rm.latency.snapshot()
	}
	m.mu.Unlock()
	sort.Strings(order)
	return order, hists
}
