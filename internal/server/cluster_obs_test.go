package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// promValue extracts the value of the first sample line whose name (and
// optional label set) matches prefix exactly.
func promValue(t *testing.T, text, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, prefix+" "), 64)
		if err != nil {
			t.Fatalf("sample %q unparseable: %v", line, err)
		}
		return v
	}
	t.Fatalf("exposition has no sample %q", prefix)
	return 0
}

// TestClusterRooflineFamilies asserts the communication-roofline and
// hedge-outcome Prometheus families appear in cluster mode, lint clean,
// and that the roofline ratio is ≥ 1 once transforms have been
// forwarded — achieved wire bytes include framing the analytical floor
// does not, so a ratio below 1 means the accounting is broken.
func TestClusterRooflineFamilies(t *testing.T) {
	sc := startServerCluster(t, 2, Config{})
	resp := postJSON(t, sc.https[0].URL+"/v1/fft", FFTRequest{Transforms: clusterBatch()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if m := sc.servers[0].Cluster().Metrics(); m.Forwarded == 0 {
		t.Fatal("nothing forwarded; roofline counters untestable")
	}

	req, err := http.NewRequest(http.MethodGet, sc.https[0].URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	if errs := obs.LintExposition(strings.NewReader(text)); len(errs) > 0 {
		t.Fatalf("exposition fails lint: %v", errs)
	}
	for _, outcome := range []string{"won", "lost", "canceled"} {
		if !strings.Contains(text, `fftd_cluster_hedge_outcome_total{outcome="`+outcome+`"}`) {
			t.Errorf("exposition missing hedge outcome %q", outcome)
		}
	}

	sent := promValue(t, text, `fftd_cluster_comm_bytes_total{direction="sent"}`)
	recv := promValue(t, text, `fftd_cluster_comm_bytes_total{direction="received"}`)
	if sent <= 0 || recv <= 0 {
		t.Fatalf("comm bytes sent=%v received=%v, want both > 0 after forwarding", sent, recv)
	}
	if ratio := promValue(t, text, "fftd_comm_roofline_ratio"); ratio < 1.0 {
		t.Fatalf("fftd_comm_roofline_ratio = %v, want >= 1.0", ratio)
	}
}

// TestClusterSlowTraceRemoteSpans asserts GET /v1/debug/slow surfaces
// the cluster half of a forwarded request: the captured trace carries
// the cross-node trace ID, grafted remote child spans and per-request
// wire byte counts, and the body reports the serving path's roofline
// ratio.
func TestClusterSlowTraceRemoteSpans(t *testing.T) {
	sc := startServerCluster(t, 2, Config{TraceSampleEvery: 1})
	resp := postJSON(t, sc.https[0].URL+"/v1/fft", FFTRequest{Transforms: clusterBatch()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")

	r, err := testClient.Get(sc.https[0].URL + "/v1/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var slow SlowTraces
	if err := json.NewDecoder(r.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	if slow.CommRooflineRatio < 1.0 {
		t.Errorf("debug/slow comm_roofline_ratio = %v, want >= 1.0", slow.CommRooflineRatio)
	}
	var captured *CapturedTrace
	for i := range slow.Traces {
		if slow.Traces[i].RequestID == id {
			captured = &slow.Traces[i]
		}
	}
	if captured == nil {
		t.Fatalf("request %s not in slow ring", id)
	}
	if captured.TraceID == "" {
		t.Error("captured trace has no cross-node trace ID")
	}
	if captured.RemoteSpans == 0 {
		t.Fatal("captured trace has no remote child spans (satellite regression)")
	}
	if captured.WireBytesSent <= 0 || captured.WireBytesRecv <= 0 {
		t.Errorf("captured trace wire bytes sent=%d recv=%d, want both > 0",
			captured.WireBytesSent, captured.WireBytesRecv)
	}
	remote := 0
	for _, sp := range captured.Spans {
		if sp.Remote {
			remote++
			if sp.Cat != obs.CatCluster && sp.Cat != obs.CatCompute && sp.Cat != obs.CatPlan {
				t.Errorf("remote span %q has unexpected cat %q", sp.Name, sp.Cat)
			}
		}
	}
	if remote != captured.RemoteSpans {
		t.Errorf("span list has %d remote spans, rollup says %d", remote, captured.RemoteSpans)
	}
}

// TestWideEventLogLine asserts a traced request's log record is the
// wide event: one line rolling up span counts, stage timings by
// category and wire byte totals.
func TestWideEventLogLine(t *testing.T) {
	var logBuf bytes.Buffer
	s, ts := newTestServer(t, Config{
		Workers:          1,
		TraceSampleEvery: 1,
		Logger:           slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	_ = s
	resp := postBody(t, ts.URL+"/v1/fft", `{"input": [[1,0],[0,0]]}`)
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")

	var rec struct {
		Msg     string             `json:"msg"`
		ID      string             `json:"id"`
		Status  int                `json:"status"`
		Spans   int                `json:"spans"`
		Remote  int                `json:"remote_spans"`
		StageMS map[string]float64 `json:"stage_ms"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, logBuf.String())
	}
	if rec.Msg != "request" || rec.ID != id || rec.Status != 200 {
		t.Fatalf("log record = %+v", rec)
	}
	if rec.Spans < 2 {
		t.Errorf("wide event rolled up %d spans, want >= 2 (root + transform)", rec.Spans)
	}
	if rec.StageMS[obs.CatServer] <= 0 {
		t.Errorf("wide event stage_ms missing server stage: %v", rec.StageMS)
	}
	if _, ok := rec.StageMS[obs.CatCompute]; !ok {
		t.Errorf("wide event stage_ms missing compute stage: %v", rec.StageMS)
	}
}
