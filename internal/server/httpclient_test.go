package server

import (
	"net/http"
	"time"
)

// testClient replaces http.DefaultClient in the package's tests. The
// default client has no timeout, so a wedged handler turns into a
// 10-minute `go test` hang with a useless goroutine dump; a 30s cap
// converts that into a fast, attributable failure while staying far
// above anything a healthy in-process server needs.
var testClient = &http.Client{Timeout: 30 * time.Second}
