package server

import "sync"

// flightGroup coalesces concurrent identical requests: the first caller
// of a key executes the function, every concurrent duplicate waits and
// shares the leader's result. Simulations and table evaluations are
// deterministic functions of their request, so identical in-flight
// queries would only repeat work. (A deliberately tiny singleflight;
// results are not cached once the flight lands.)
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// do returns the result of fn for key, with shared=true if this caller
// piggybacked on another caller's execution.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
