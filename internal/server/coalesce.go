package server

import (
	"runtime/debug"
	"sync"
)

// flightGroup coalesces concurrent identical requests: the first caller
// of a key executes the function, every concurrent duplicate waits and
// shares the leader's result. Simulations and table evaluations are
// deterministic functions of their request, so identical in-flight
// queries would only repeat work. (A deliberately tiny singleflight;
// results are not cached once the flight lands.)
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// do returns the result of fn for key, with shared=true if this caller
// piggybacked on another caller's execution.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// The cleanup (remove the flight, wake the waiters) must run even if
	// fn panics: otherwise every follower of this flight — and every
	// future caller of the key, which would find the stale entry and wait
	// on a channel nobody will close — blocks forever. The panic itself
	// becomes a panicError delivered to leader and followers alike, the
	// same conversion the worker pool applies, so the middleware turns it
	// into a 500 instead of a dead daemon.
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.val, c.err = nil, &panicError{value: r, stack: debug.Stack()}
			}
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()
	return c.val, false, c.err
}
