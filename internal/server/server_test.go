package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fft"
)

// ---- worker pool ----

func TestPoolRunsJobs(t *testing.T) {
	// Queue depth >= submitter count: submit is non-blocking and sheds
	// with ErrSaturated when the queue is full, so a smaller queue would
	// make this scheduling-dependent (saturation itself is pinned by
	// TestHTTPSaturationReturns429).
	p := newWorkerPool(4, 32)
	defer p.close()
	var mu sync.Mutex
	ran := 0
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.do(context.Background(), func() {
				mu.Lock()
				ran++
				mu.Unlock()
			}); err != nil {
				t.Errorf("do: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran != 32 {
		t.Fatalf("ran = %d, want 32", ran)
	}
}

func TestPoolRecoversPanics(t *testing.T) {
	p := newWorkerPool(1, 1)
	defer p.close()
	err := p.do(context.Background(), func() { panic("boom") })
	var pe *panicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want panicError", err)
	}
	if !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("panic message lost: %v", pe)
	}
	if httpStatus(err) != http.StatusInternalServerError {
		t.Fatalf("panic must map to 500, got %d", httpStatus(err))
	}
	// The worker survived: the pool still serves jobs.
	if err := p.do(context.Background(), func() {}); err != nil {
		t.Fatalf("pool dead after panic: %v", err)
	}
}

func TestPoolDraining(t *testing.T) {
	p := newWorkerPool(1, 1)
	p.close()
	err := p.do(context.Background(), func() {})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	if httpStatus(err) != http.StatusServiceUnavailable {
		t.Fatalf("draining must map to 503, got %d", httpStatus(err))
	}
	p.close() // idempotent
}

func TestPoolSaturationRejects(t *testing.T) {
	p := newWorkerPool(1, 1)
	defer p.close()
	block := make(chan struct{})
	go func() { _ = p.do(context.Background(), func() { <-block }) }()
	// Wait until the blocker occupies the worker.
	for p.stats().Active == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() { _ = p.do(context.Background(), func() { <-block }) }()
	for p.stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	// Worker busy + queue full: submission must fail fast with
	// ErrSaturated, not wait for a slot — queueing delay would hide the
	// saturation knee from load generators.
	err := p.do(context.Background(), func() {})
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if httpStatus(err) != http.StatusTooManyRequests {
		t.Fatalf("saturation must map to 429, got %d", httpStatus(err))
	}
	if got := p.stats().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	close(block)
}

func TestPoolSlowJobTimeout(t *testing.T) {
	p := newWorkerPool(1, 1)
	defer p.close()
	block := make(chan struct{})
	defer close(block)
	// The job is accepted but never finishes within the deadline: the
	// caller's wait (not the submission) times out and maps to 504.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := p.do(ctx, func() { <-block })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if httpStatus(err) != http.StatusGatewayTimeout {
		t.Fatalf("timeout must map to 504, got %d", httpStatus(err))
	}
}

// TestHTTPSaturationReturns429 drives the full HTTP path into pool
// saturation: with the one worker and one queue slot pinned by blocking
// jobs, a transform must come back 429 with a Retry-After header, and
// the rejection must be visible in both /metrics representations.
func TestHTTPSaturationReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	defer close(block)
	// Pin the worker, then the queue slot.
	for i := 0; i < 2; i++ {
		go func() { _ = s.pool.do(context.Background(), func() { <-block }) }()
	}
	for s.pool.stats().Active == 0 || s.pool.stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/fft", FFTRequest{
		TransformSpec: TransformSpec{Input: []Complex{{1, 0}, {0, 0}, {0, 0}, {0, 0}}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated transform status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After header")
	}

	snap := s.MetricsSnapshot()
	if snap.Queue.Rejected == 0 {
		t.Fatalf("pool rejected counter = 0 after a 429: %+v", snap.Queue)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"fftd_pool_rejected_total", "fftd_pool_submitted_total"} {
		if !strings.Contains(buf.String(), family) {
			t.Errorf("exposition missing family %s", family)
		}
	}
}

func TestPoolCloseRunsQueuedJobs(t *testing.T) {
	p := newWorkerPool(1, 8)
	block := make(chan struct{})
	var mu sync.Mutex
	ran := 0
	done := make(chan error, 5)
	go func() { done <- p.do(context.Background(), func() { <-block }) }()
	for p.stats().Active == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		go func() {
			done <- p.do(context.Background(), func() {
				mu.Lock()
				ran++
				mu.Unlock()
			})
		}()
	}
	for p.stats().Queued < 4 {
		time.Sleep(time.Millisecond)
	}
	close(block)
	p.close()
	for i := 0; i < 5; i++ {
		if err := <-done; err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if ran != 4 {
		t.Fatalf("queued jobs run = %d, want 4 (drain must not drop queued work)", ran)
	}
}

// ---- coalescing ----

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	type out struct {
		val    any
		shared bool
	}
	results := make(chan out, 3)
	go func() {
		v, shared, _ := g.do("k", func() (any, error) {
			close(leaderIn)
			<-release
			return 42, nil
		})
		results <- out{v, shared}
	}()
	<-leaderIn
	for i := 0; i < 2; i++ {
		go func() {
			v, shared, _ := g.do("k", func() (any, error) { return 42, nil })
			results <- out{v, shared}
		}()
	}
	// Followers are registered once they block; give them a beat.
	time.Sleep(10 * time.Millisecond)
	close(release)
	sharedCount := 0
	for i := 0; i < 3; i++ {
		r := <-results
		if r.val != 42 {
			t.Fatalf("val = %v", r.val)
		}
		if r.shared {
			sharedCount++
		}
	}
	if sharedCount != 2 {
		t.Fatalf("shared = %d, want 2", sharedCount)
	}
	// Different keys never coalesce.
	_, shared, _ := g.do("other", func() (any, error) { return 1, nil })
	if shared {
		t.Fatal("fresh key reported shared")
	}
}

// ---- HTTP handlers ----

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := testClient.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFFTSingleMatchesDirect(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(7))
	const n = 64
	in := make([]Complex, n)
	x := make([]complex128, n)
	for i := range in {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		in[i] = Complex{re, im}
		x[i] = complex(re, im)
	}
	resp := postJSON(t, ts.URL+"/v1/fft", FFTRequest{TransformSpec: TransformSpec{Input: in}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := decode[FFTResponse](t, resp)
	if body.Batch != 1 || len(body.Results) != 1 {
		t.Fatalf("batch shape: %+v", body)
	}
	want := fft.MustPlan(n).Forward(x)
	got := toComplex(body.Results[0].Output)
	if d := fft.MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("server FFT differs from direct by %g", d)
	}
}

func TestFFTRealAndInverse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Real input: n/2+1 bins matching RealPlan.
	real := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	resp := postJSON(t, ts.URL+"/v1/fft", FFTRequest{TransformSpec: TransformSpec{RealInput: real}})
	body := decode[FFTResponse](t, resp)
	if body.Results[0].Error != "" {
		t.Fatalf("real transform error: %s", body.Results[0].Error)
	}
	rp, _ := fft.NewRealPlan(8)
	want := rp.Forward(real)
	if len(body.Results[0].Output) != len(want) {
		t.Fatalf("real spectrum bins = %d, want %d", len(body.Results[0].Output), len(want))
	}
	// Inverse round trip: ifft(fft(x)) == x.
	x := []Complex{{1, 0}, {2, 0}, {3, 0}, {4, 0}}
	fwd := decode[FFTResponse](t, postJSON(t, ts.URL+"/v1/fft", FFTRequest{TransformSpec: TransformSpec{Input: x}}))
	inv := decode[FFTResponse](t, postJSON(t, ts.URL+"/v1/fft",
		FFTRequest{TransformSpec: TransformSpec{Input: fwd.Results[0].Output, Inverse: true}}))
	for i, c := range inv.Results[0].Output {
		if math.Abs(c[0]-x[i][0]) > 1e-12 || math.Abs(c[1]) > 1e-12 {
			t.Fatalf("round trip bin %d = %v, want %v", i, c, x[i])
		}
	}
}

func TestFFTBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 4})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty", FFTRequest{}, http.StatusOK}, // per-transform error, batch succeeds
		{"not json", "nope", http.StatusBadRequest},
		{"batch too big", FFTRequest{Transforms: make([]TransformSpec, 5)}, http.StatusBadRequest},
	}
	for _, c := range cases {
		var resp *http.Response
		if s, ok := c.body.(string); ok {
			r, err := testClient.Post(ts.URL+"/v1/fft", "application/json", strings.NewReader(s))
			if err != nil {
				t.Fatal(err)
			}
			resp = r
		} else {
			resp = postJSON(t, ts.URL+"/v1/fft", c.body)
		}
		if resp.StatusCode != c.want {
			t.Fatalf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
		resp.Body.Close()
	}
	// Non-power-of-two complex lengths are served (Bluestein), so the
	// remaining per-transform rejections are real-domain shape errors:
	// real_input must be a power of two, and real_input+inverse must be
	// refused — never silently answered with a forward spectrum.
	resp := postJSON(t, ts.URL+"/v1/fft",
		FFTRequest{TransformSpec: TransformSpec{RealInput: []float64{1, 2, 3}}})
	body := decode[FFTResponse](t, resp)
	if body.Results[0].Error == "" {
		t.Fatal("length-3 real transform must carry an error")
	}
	resp = postJSON(t, ts.URL+"/v1/fft",
		FFTRequest{TransformSpec: TransformSpec{RealInput: []float64{1, 2, 3, 4}, Inverse: true}})
	body = decode[FFTResponse](t, resp)
	if body.Results[0].Error == "" {
		t.Fatal("real_input with inverse must carry an error")
	}
}

func TestSimulateFFTScenario(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Network: "hypermesh", N: 64, Scenario: "fft", Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := decode[SimulateResponse](t, resp)
	// Hypermesh FFT: log N butterfly steps + <= 3 reversal steps (the
	// paper's Table 2A hypermesh row).
	if body.ButterflySteps != 6 {
		t.Fatalf("butterfly steps = %d, want 6", body.ButterflySteps)
	}
	if body.BitReversalSteps > 3 {
		t.Fatalf("bit-reversal steps = %d, want <= 3", body.BitReversalSteps)
	}
	if body.MaxError > 1e-9 {
		t.Fatalf("simulated FFT error %g", body.MaxError)
	}
	if body.Table == nil || body.Table.Rows() == 0 {
		t.Fatal("response table missing")
	}
}

// TestSimulateRooflineInvariant asserts the fft scenario reports the
// communication roofline and that the ratio is ≥ 1 and identical on
// every network the endpoint serves — the word count underlying it is
// topology-invariant, so only the step costs may differ.
func TestSimulateRooflineInvariant(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var first *SimulateResponse
	for _, network := range []string{"mesh", "hypercube", "hypermesh"} {
		resp := postJSON(t, ts.URL+"/v1/simulate",
			SimulateRequest{Network: network, N: 64, Scenario: "fft", Seed: 3})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", network, resp.StatusCode)
		}
		body := decode[SimulateResponse](t, resp)
		if body.CommRooflineRatio < 1.0 {
			t.Errorf("%s comm_roofline_ratio = %v, want >= 1.0", network, body.CommRooflineRatio)
		}
		if body.CommBytes <= 0 || body.CommFloorBytes <= 0 {
			t.Errorf("%s comm bytes %d / floor %d, want both > 0", network, body.CommBytes, body.CommFloorBytes)
		}
		if first == nil {
			first = &body
			continue
		}
		//fftlint:ignore floatcmp identical word counts divide by the identical floor; bit-equality pins topology invariance
		if body.CommBytes != first.CommBytes || body.CommRooflineRatio != first.CommRooflineRatio {
			t.Errorf("%s reports bytes=%d ratio=%v, first network bytes=%d ratio=%v — must be invariant",
				network, body.CommBytes, body.CommRooflineRatio, first.CommBytes, first.CommRooflineRatio)
		}
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSimNodes: 1024})
	for _, req := range []SimulateRequest{
		{Network: "ring", N: 64, Scenario: "fft"},
		{Network: "mesh", N: 8, Scenario: "fft"},      // not a square
		{Network: "mesh", N: 4096, Scenario: "fft"},   // over MaxSimNodes
		{Network: "mesh", N: 64, Scenario: "warp9"},   // unknown scenario
		{Network: "hypercube", N: 3, Scenario: "fft"}, // not a power of two
	} {
		resp := postJSON(t, ts.URL+"/v1/simulate", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: status = %d, want 400", req, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestSimulateCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/simulate",
				SimulateRequest{Network: "hypercube", N: 1024, Scenario: "fft", Seed: 11})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d", resp.StatusCode)
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
	snap := s.MetricsSnapshot()
	// Every request either executed a simulation or shared one: the two
	// counters partition the client count exactly.
	if snap.Simulations+snap.Coalesced != clients {
		t.Fatalf("simulations %d + coalesced %d != %d clients",
			snap.Simulations, snap.Coalesced, clients)
	}
}

func TestCompareTables(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := testClient.Get(ts.URL + "/v1/compare?n=4096")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[CompareResponse](t, resp)
	if len(body.Table2A) != 3 {
		t.Fatalf("table 2a rows = %d, want 3", len(body.Table2A))
	}
	// The paper's hypermesh row: total <= log N + 3 = 15 at N = 4096.
	for _, row := range body.Table2A {
		if row.Network == "2D Hypermesh" && row.Steps.Total() > 15 {
			t.Fatalf("hypermesh total steps = %d, want <= 15", row.Steps.Total())
		}
	}
	if len(body.Table2B) != 3 || len(body.Bisection) != 3 {
		t.Fatalf("missing tables: %+v", body)
	}
	// Single table selection.
	resp, err = testClient.Get(ts.URL + "/v1/compare?n=1024&table=2a")
	if err != nil {
		t.Fatal(err)
	}
	only := decode[CompareResponse](t, resp)
	if len(only.Table2A) == 0 || len(only.Table2B) != 0 {
		t.Fatalf("table=2a must return only 2a: %+v", only)
	}
	// Errors: bad n, bad table.
	for _, q := range []string{"?n=oops", "?table=9z", "?n=100"} {
		resp, err := testClient.Get(ts.URL + "/v1/compare" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", q, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := testClient.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if h := decode[HealthResponse](t, resp); h.Status != "ok" {
		t.Fatalf("healthz = %+v", h)
	}
	// Generate some traffic, then read the counters.
	postJSON(t, ts.URL+"/v1/fft",
		FFTRequest{TransformSpec: TransformSpec{Input: []Complex{{1, 0}, {2, 0}}}}).Body.Close()
	resp, err = testClient.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap := decode[Snapshot](t, resp)
	if snap.Requests["POST /v1/fft"] != 1 {
		t.Fatalf("fft request counter = %d, want 1", snap.Requests["POST /v1/fft"])
	}
	if snap.Requests["GET /healthz"] != 1 {
		t.Fatalf("healthz counter = %d", snap.Requests["GET /healthz"])
	}
	if snap.Transforms != 1 {
		t.Fatalf("transforms = %d, want 1", snap.Transforms)
	}
	if snap.PlanCache.Misses == 0 {
		t.Fatal("plan cache misses = 0 after first transform")
	}
	if snap.Queue.Workers == 0 || snap.Queue.Capacity == 0 {
		t.Fatalf("queue stats empty: %+v", snap.Queue)
	}
	if snap.Latency.Count == 0 {
		t.Fatal("latency histogram empty")
	}
}

func TestHandlerPanicBecomes500(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	s.route("GET /test/panic", func(w http.ResponseWriter, _ *http.Request) {
		panic("handler exploded")
	}, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := testClient.Get(ts.URL + "/test/panic")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "handler exploded") {
		t.Fatalf("panic message lost: %+v", body)
	}
	// The daemon survived and 5xx was counted.
	if s.MetricsSnapshot().Responses["5xx"] != 1 {
		t.Fatal("5xx not counted")
	}
}

func TestWorkerPanicBecomes500(t *testing.T) {
	// A panic inside pool work (not the handler goroutine) must also
	// surface as a 500 — this is the daemon-survival property of the
	// panic-recovery design.
	s := New(Config{})
	defer s.Close()
	s.route("GET /test/worker-panic", func(w http.ResponseWriter, r *http.Request) {
		err := s.pool.do(r.Context(), func() { panic("worker exploded") })
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, HealthResponse{Status: "unreachable"})
	}, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp, err := testClient.Get(ts.URL + "/test/worker-panic")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status = %d, want 500", resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Workers survived three panics; normal work still completes.
	resp, err := testClient.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal("daemon unhealthy after worker panics")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := testClient.Get(ts.URL + "/v1/fft")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/fft status = %d, want 405", resp.StatusCode)
	}
}
