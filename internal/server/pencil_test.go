package server

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cluster/wire"
	"repro/internal/fft"
)

// fft2dInput builds a row-major random input and its single-node Plan2D
// (or Plan3D) reference output.
func fft2dInput(t *testing.T, rows, cols, depth int, inverse bool, seed int64) ([]Complex, []complex128) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	total := rows * cols * max(depth, 1)
	in := make([]Complex, total)
	x := make([]complex128, total)
	for i := range in {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		in[i] = Complex{re, im}
		x[i] = complex(re, im)
	}
	want := make([]complex128, total)
	if depth > 1 {
		p, err := fft.NewPlan3D(rows, cols, depth)
		if err != nil {
			t.Fatal(err)
		}
		if inverse {
			p.Inverse(want, x)
		} else {
			p.Transform(want, x)
		}
	} else {
		p, err := fft.NewPlan2D(rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		if inverse {
			p.Inverse(want, x)
		} else {
			p.Transform(want, x)
		}
	}
	return in, want
}

func checkFFT2DOutput(t *testing.T, label string, got []Complex, want []complex128) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d samples, want %d", label, len(got), len(want))
	}
	for i, g := range got {
		//fftlint:ignore floatcmp the acceptance criterion is bit-identical pencil vs single-node output
		if complex(g[0], g[1]) != want[i] {
			t.Fatalf("%s sample %d: got %v, want %v", label, i, g, want[i])
		}
	}
}

// TestFFT2DPencilSingleNodeMatchesPlan — /v1/fft2d on a single node
// still runs the pencil coordinator (in-process worker, no wire), and
// its output is bit-identical to Plan2D/Plan3D.
func TestFFT2DPencilSingleNodeMatchesPlan(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	shapes := []struct{ rows, cols, depth int }{
		{16, 16, 0}, {8, 32, 0}, {12, 20, 0}, {4, 6, 8},
	}
	for _, sh := range shapes {
		for _, inverse := range []bool{false, true} {
			in, want := fft2dInput(t, sh.rows, sh.cols, sh.depth, inverse, int64(sh.rows+sh.cols))
			resp := postJSON(t, ts.URL+"/v1/fft2d", FFT2DRequest{
				Rows: sh.rows, Cols: sh.cols, Depth: sh.depth, Input: in, Inverse: inverse,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%dx%dx%d: status %d", sh.rows, sh.cols, sh.depth, resp.StatusCode)
			}
			body := decode[FFT2DResponse](t, resp)
			if body.Distributed || body.Workers != 1 {
				t.Fatalf("single-node run reported distributed=%v workers=%d", body.Distributed, body.Workers)
			}
			//fftlint:ignore floatcmp an in-process run moves no wire bytes, so the ratio is exactly zero
			if body.WireBytesSent != 0 || body.CommFloorBytes != 0 || body.CommRooflineRatio != 0 {
				t.Fatalf("in-process run reported wire traffic: %+v", body)
			}
			checkFFT2DOutput(t, "single-node", body.Output, want)
		}
	}
}

// TestFFT2DPencilClusterMatchesPlan2D — the end-to-end acceptance
// path: three fftd instances in a ring, /v1/fft2d on one front end,
// output bit-identical to single-node Plan2D for a square, a non-square
// and a non-power-of-two shape, with the transpose's wire accounting at
// or above the analytical floor.
func TestFFT2DPencilClusterMatchesPlan2D(t *testing.T) {
	sc := startServerCluster(t, 3, Config{})
	shapes := []struct{ rows, cols int }{{16, 16}, {8, 32}, {12, 20}}
	for _, sh := range shapes {
		in, want := fft2dInput(t, sh.rows, sh.cols, 0, false, int64(41*sh.rows+sh.cols))
		resp := postJSON(t, sc.https[0].URL+"/v1/fft2d", FFT2DRequest{
			Rows: sh.rows, Cols: sh.cols, Input: in,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%dx%d: status %d", sh.rows, sh.cols, resp.StatusCode)
		}
		body := decode[FFT2DResponse](t, resp)
		if !body.Distributed || body.Workers != 3 {
			t.Fatalf("%dx%d: distributed=%v workers=%d, want 3-way", sh.rows, sh.cols, body.Distributed, body.Workers)
		}
		if body.WireBytesSent == 0 || body.WireBytesRecv == 0 {
			t.Fatalf("%dx%d: no wire traffic recorded: %+v", sh.rows, sh.cols, body)
		}
		if body.CommFloorBytes <= 0 || body.CommRooflineRatio < 1 {
			t.Fatalf("%dx%d: roofline accounting: floor=%d ratio=%g", sh.rows, sh.cols, body.CommFloorBytes, body.CommRooflineRatio)
		}
		checkFFT2DOutput(t, "cluster", body.Output, want)
	}

	// The coordinator's counters surface in both metrics forms.
	snap := sc.servers[0].MetricsSnapshot()
	if snap.Pencil == nil || snap.Pencil.Runs2D != int64(len(shapes)) {
		t.Fatalf("snapshot pencil counters: %+v", snap.Pencil)
	}
	if snap.Pencil.WireBytesSent == 0 || snap.Pencil.CommFloorBytes == 0 {
		t.Fatalf("snapshot pencil wire totals empty: %+v", snap.Pencil)
	}
	req, _ := http.NewRequest(http.MethodGet, sc.https[0].URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	mresp, err := testClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, family := range []string{
		"fftd_pencil_transforms_total", "fftd_pencil_rpcs_total",
		"fftd_pencil_wire_bytes_total", "fftd_pencil_comm_floor_bytes_total",
		"fftd_pencil_waves_total", "fftd_pencil_errors_total",
		"fftd_pencil_roofline_ratio", "fftd_pencil_band_bytes",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("/metrics exposition missing %s", family)
		}
	}
}

// TestFFT2DPencilValidation pins the request validation errors.
func TestFFT2DPencilValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTransformLen: 1024})
	cases := []struct {
		name string
		req  FFT2DRequest
		want int
	}{
		{"zero rows", FFT2DRequest{Rows: 0, Cols: 8, Input: make([]Complex, 0)}, http.StatusBadRequest},
		{"negative depth", FFT2DRequest{Rows: 4, Cols: 4, Depth: -1, Input: make([]Complex, 16)}, http.StatusBadRequest},
		{"length mismatch", FFT2DRequest{Rows: 4, Cols: 4, Input: make([]Complex, 15)}, http.StatusBadRequest},
		{"over limit", FFT2DRequest{Rows: 64, Cols: 64, Input: make([]Complex, 4096)}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/fft2d", tc.req)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// errPencilTransport fails every pencil sub-operation with a fixed
// error, standing in for a peer's rejection.
type errPencilTransport struct{ err error }

func (e errPencilTransport) Call(ctx context.Context, peer string, req, resp *wire.PencilOp) (int64, int64, error) {
	return 0, 0, e.err
}

// TestFFT2DRemoteErrorStatusMapping — a peer's transient capacity
// rejection (mem cap, job limit, TTL expiry) must map to 503, not 400:
// only shape validation that would fail anywhere is the caller's error.
func TestFFT2DRemoteErrorStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		msg  string
		want int
	}{
		{"job limit", "pencil busy: 64 jobs already open", http.StatusServiceUnavailable},
		{"expired job", "pencil busy: job 9 expired or not open", http.StatusServiceUnavailable},
		{"validation", "pencil: dims 4 not 2 or 3", http.StatusBadRequest},
	}
	for _, tc := range cases {
		s, ts := newTestServer(t, Config{})
		s.pencilTransport = errPencilTransport{err: &cluster.RemoteError{Peer: "w1", Msg: tc.msg}}
		in, _ := fft2dInput(t, 4, 4, 0, false, 1)
		resp := postJSON(t, ts.URL+"/v1/fft2d", FFT2DRequest{Rows: 4, Cols: 4, Input: in})
		eb := decode[errorBody](t, resp)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d (%+v)", tc.name, resp.StatusCode, tc.want, eb)
		}
		if !strings.Contains(eb.Error, tc.msg) {
			t.Fatalf("%s: error body %q does not carry the peer message", tc.name, eb.Error)
		}
	}
}

// TestFFT2DClusterSkipsV1Peer — one v1-only node in the ring (an old
// binary: no pencil support, drops v2 frames) must be excluded from the
// pencil schedule instead of failing every /v1/fft2d run.
func TestFFT2DClusterSkipsV1Peer(t *testing.T) {
	var servers []*Server
	var nodes []*cluster.Node
	var addrs []string
	for i := 0; i < 2; i++ {
		s := New(Config{})
		node, err := cluster.Listen("127.0.0.1:0", cluster.NodeConfig{
			Exec:   s.ClusterExecutor(),
			Ready:  func() bool { return !s.Draining() },
			Pencil: s.PencilWorker(),
		})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		nodes = append(nodes, node)
		addrs = append(addrs, node.Addr())
	}
	oldServer := New(Config{})
	oldNode, err := cluster.Listen("127.0.0.1:0", cluster.NodeConfig{
		Exec:       oldServer.ClusterExecutor(),
		Ready:      func() bool { return true },
		WireV1Only: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs = append(addrs, oldNode.Addr())

	reg := cluster.NewRegistry(addrs[0], []string{addrs[1], addrs[2]}, cluster.RegistryConfig{})
	client, err := cluster.NewClient(reg, cluster.ClientConfig{
		Self:  addrs[0],
		Local: servers[0].ClusterExecutor(),
	})
	if err != nil {
		t.Fatal(err)
	}
	servers[0].SetCluster(client)
	ts := httptest.NewServer(servers[0].Handler())
	t.Cleanup(func() {
		ts.Close()
		client.Close()
		for _, n := range nodes {
			_ = n.Close()
		}
		_ = oldNode.Close()
		for _, s := range servers {
			s.Close()
		}
		oldServer.Close()
	})

	in, want := fft2dInput(t, 8, 16, 0, false, 13)
	resp := postJSON(t, ts.URL+"/v1/fft2d", FFT2DRequest{Rows: 8, Cols: 16, Input: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d with a v1 peer in the ring; want the peer excluded and 200", resp.StatusCode)
	}
	body := decode[FFT2DResponse](t, resp)
	if !body.Distributed || body.Workers != 2 {
		t.Fatalf("schedule used %d workers (distributed=%v); want the v1 peer excluded (2)", body.Workers, body.Distributed)
	}
	checkFFT2DOutput(t, "v1-excluded cluster", body.Output, want)
}

// TestRequestBodyLimit413 — satellite regression test: /v1/fft and
// /v1/fft2d cap their request bodies at a bound derived from
// MaxTransformLen and answer 413, not an OOM or a hung decode, when a
// client streams past it.
func TestRequestBodyLimit413(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxTransformLen: 64})
	limit := s.maxBodyBytes()

	// A syntactically endless JSON array comfortably past the cap.
	junk := bytes.Repeat([]byte("[0.123456789,9.87654321],"), int(limit/25)+64)
	body := append([]byte(`{"input":[`), junk...)

	for _, route := range []string{"/v1/fft", "/v1/fft2d"} {
		resp, err := testClient.Post(ts.URL+route, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", route, err)
		}
		eb := decode[errorBody](t, resp)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413 (%+v)", route, resp.StatusCode, eb)
		}
		if !strings.Contains(eb.Error, "exceeds") {
			t.Fatalf("%s: 413 body does not explain the limit: %+v", route, eb)
		}
	}

	// A request inside the cap still serves normally.
	in := make([]Complex, 8)
	in[1] = Complex{1, 0}
	resp := postJSON(t, ts.URL+"/v1/fft", FFTRequest{TransformSpec: TransformSpec{Input: in}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-cap /v1/fft: status %d", resp.StatusCode)
	}
}
