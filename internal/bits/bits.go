// Package bits provides the low-level integer utilities that the rest of
// the repository is built on: base-2 logarithms, bit reversal, mixed-radix
// digit manipulation, Gray codes and shuffle operations.
//
// Every butterfly algorithm in the paper is indexed by the binary (or, for
// hypermeshes, base-b) representation of node addresses, so these helpers
// are shared by the topology models, the permutation library, the FFT and
// the network simulator.
package bits

import "fmt"

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Log2 returns floor(log2(n)) for n >= 1. It panics if n < 1.
func Log2(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("bits: Log2 of non-positive value %d", n))
	}
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// CeilLog2 returns ceil(log2(n)) for n >= 1. It panics if n < 1.
func CeilLog2(n int) int {
	l := Log2(n)
	if 1<<uint(l) < n {
		l++
	}
	return l
}

// Pow returns b**e for non-negative integer exponents. It panics on a
// negative exponent and does not guard against overflow; callers in this
// repository only use small bases and exponents (network sizes).
func Pow(b, e int) int {
	if e < 0 {
		panic(fmt.Sprintf("bits: Pow with negative exponent %d", e))
	}
	r := 1
	for ; e > 0; e-- {
		r *= b
	}
	return r
}

// Reverse returns the reversal of the low `width` bits of x. Bits above
// `width` are discarded. It panics if width is negative or x has bits set
// at or above width.
func Reverse(x, width int) int {
	if width < 0 {
		panic("bits: Reverse with negative width")
	}
	if width < 63 && x >= 1<<uint(width) {
		panic(fmt.Sprintf("bits: Reverse(%d) does not fit in %d bits", x, width))
	}
	r := 0
	for i := 0; i < width; i++ {
		r = r<<1 | (x>>uint(i))&1
	}
	return r
}

// Bit returns bit i (0 = least significant) of x as 0 or 1.
func Bit(x, i int) int {
	return (x >> uint(i)) & 1
}

// SetBit returns x with bit i forced to b (b must be 0 or 1).
func SetBit(x, i, b int) int {
	if b != 0 && b != 1 {
		panic(fmt.Sprintf("bits: SetBit with non-binary value %d", b))
	}
	return x&^(1<<uint(i)) | b<<uint(i)
}

// FlipBit returns x with bit i complemented.
func FlipBit(x, i int) int {
	return x ^ 1<<uint(i)
}

// OnesCount returns the number of set bits in x (x >= 0).
func OnesCount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// HammingDistance returns the number of bit positions in which a and b
// differ.
func HammingDistance(a, b int) int {
	return OnesCount(a ^ b)
}

// GrayCode returns the binary-reflected Gray code of x.
func GrayCode(x int) int {
	return x ^ (x >> 1)
}

// InverseGrayCode inverts GrayCode: InverseGrayCode(GrayCode(x)) == x.
func InverseGrayCode(g int) int {
	x := 0
	for ; g != 0; g >>= 1 {
		x ^= g
	}
	return x
}

// Digits decomposes x into n base-b digits, least significant first.
// It panics if x does not fit in n digits or if b < 2 or n < 0.
func Digits(x, b, n int) []int {
	if b < 2 {
		panic(fmt.Sprintf("bits: Digits with base %d < 2", b))
	}
	if n < 0 {
		panic("bits: Digits with negative digit count")
	}
	if x < 0 {
		panic(fmt.Sprintf("bits: Digits of negative value %d", x))
	}
	d := make([]int, n)
	for i := 0; i < n; i++ {
		d[i] = x % b
		x /= b
	}
	if x != 0 {
		panic(fmt.Sprintf("bits: value does not fit in %d base-%d digits", n, b))
	}
	return d
}

// FromDigits recomposes base-b digits (least significant first) into an
// integer. It is the inverse of Digits.
func FromDigits(d []int, b int) int {
	if b < 2 {
		panic(fmt.Sprintf("bits: FromDigits with base %d < 2", b))
	}
	x := 0
	for i := len(d) - 1; i >= 0; i-- {
		if d[i] < 0 || d[i] >= b {
			panic(fmt.Sprintf("bits: digit %d out of range for base %d", d[i], b))
		}
		x = x*b + d[i]
	}
	return x
}

// Digit returns digit i (0 = least significant) of x in base b.
func Digit(x, b, i int) int {
	for ; i > 0; i-- {
		x /= b
	}
	return x % b
}

// SetDigit returns x with base-b digit i replaced by v (0 <= v < b).
func SetDigit(x, b, i, v int) int {
	if v < 0 || v >= b {
		panic(fmt.Sprintf("bits: SetDigit value %d out of range for base %d", v, b))
	}
	p := Pow(b, i)
	old := (x / p) % b
	return x + (v-old)*p
}

// DigitReverse reverses the order of the n base-b digits of x. For b=2 it
// coincides with Reverse. Digit reversal is the hypermesh analogue of the
// FFT's bit-reversal output permutation.
func DigitReverse(x, b, n int) int {
	d := Digits(x, b, n)
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		d[i], d[j] = d[j], d[i]
	}
	return FromDigits(d, b)
}

// PerfectShuffle performs a one-bit left rotation of the low `width` bits
// of x: the classic perfect-shuffle interconnection function.
func PerfectShuffle(x, width int) int {
	if width <= 0 {
		return x
	}
	top := Bit(x, width-1)
	return (x<<1)&(1<<uint(width)-1) | top
}

// InverseShuffle performs a one-bit right rotation of the low `width`
// bits of x, inverting PerfectShuffle.
func InverseShuffle(x, width int) int {
	if width <= 0 {
		return x
	}
	low := x & 1
	return x>>1 | low<<uint(width-1)
}
