package bits

import "testing"

// FuzzBitReverse pins the algebra of Reverse: it is an involution on the
// low `width` bits, its output stays inside the width, and it agrees
// with a naive per-bit reference.
func FuzzBitReverse(f *testing.F) {
	f.Add(uint32(0), uint8(0))
	f.Add(uint32(1), uint8(1))
	f.Add(uint32(0b1011), uint8(4))
	f.Add(uint32(0xffff), uint8(16))
	f.Add(uint32(0x12345), uint8(20))
	f.Fuzz(func(t *testing.T, raw uint32, rawWidth uint8) {
		width := int(rawWidth) % 31
		x := int(raw) & (1<<uint(width) - 1)

		r := Reverse(x, width)
		if r < 0 || r >= 1<<uint(width) {
			t.Fatalf("Reverse(%#x, %d) = %#x escapes the width", x, width, r)
		}
		if rr := Reverse(r, width); rr != x {
			t.Fatalf("Reverse is not an involution: %#x -> %#x -> %#x (width %d)", x, r, rr, width)
		}
		ref := 0
		for i := 0; i < width; i++ {
			if Bit(x, i) == 1 {
				ref |= 1 << uint(width-1-i)
			}
		}
		if r != ref {
			t.Fatalf("Reverse(%#x, %d) = %#x, reference says %#x", x, width, r, ref)
		}
	})
}
