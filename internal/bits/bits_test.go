package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	cases := map[int]bool{
		-4: false, -1: false, 0: false,
		1: true, 2: true, 3: false, 4: true, 6: false, 8: true,
		1024: true, 1023: false, 1 << 30: true,
	}
	for n, want := range cases {
		if got := IsPow2(n); got != want {
			t.Errorf("IsPow2(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1024: 10, 4096: 12}
	for n, want := range cases {
		if got := Log2(n); got != want {
			t.Errorf("Log2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLog2PanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(0) did not panic")
		}
	}()
	Log2(0)
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 4096: 12, 4097: 13}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPow(t *testing.T) {
	cases := []struct{ b, e, want int }{
		{2, 0, 1}, {2, 10, 1024}, {3, 4, 81}, {64, 2, 4096}, {8, 4, 4096}, {16, 3, 4096},
		{1, 100, 1}, {10, 3, 1000},
	}
	for _, c := range cases {
		if got := Pow(c.b, c.e); got != c.want {
			t.Errorf("Pow(%d,%d) = %d, want %d", c.b, c.e, got, c.want)
		}
	}
}

func TestReverseKnown(t *testing.T) {
	cases := []struct{ x, w, want int }{
		{0, 4, 0},
		{1, 4, 8},
		{0b0011, 4, 0b1100},
		{0b101, 3, 0b101},
		{0b100110, 6, 0b011001},
		{1, 12, 2048},
	}
	for _, c := range cases {
		if got := Reverse(c.x, c.w); got != c.want {
			t.Errorf("Reverse(%b,%d) = %b, want %b", c.x, c.w, got, c.want)
		}
	}
}

func TestReverseIsInvolution(t *testing.T) {
	f := func(x uint16) bool {
		v := int(x) & 0xfff
		return Reverse(Reverse(v, 12), 12) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReversePanicsOnOversizedInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reverse(16, 4) did not panic")
		}
	}()
	Reverse(16, 4)
}

func TestBitSetFlip(t *testing.T) {
	x := 0b1010
	if Bit(x, 0) != 0 || Bit(x, 1) != 1 || Bit(x, 3) != 1 {
		t.Errorf("Bit probes of %b wrong", x)
	}
	if got := SetBit(x, 0, 1); got != 0b1011 {
		t.Errorf("SetBit = %b", got)
	}
	if got := SetBit(x, 1, 0); got != 0b1000 {
		t.Errorf("SetBit clear = %b", got)
	}
	if got := FlipBit(x, 2); got != 0b1110 {
		t.Errorf("FlipBit = %b", got)
	}
	if got := FlipBit(FlipBit(x, 2), 2); got != x {
		t.Errorf("FlipBit not an involution: %b", got)
	}
}

func TestOnesCountAndHamming(t *testing.T) {
	if OnesCount(0) != 0 || OnesCount(0b1011) != 3 || OnesCount(1<<20) != 1 {
		t.Error("OnesCount wrong")
	}
	if HammingDistance(0, 0) != 0 {
		t.Error("HammingDistance(0,0) != 0")
	}
	if HammingDistance(0b1010, 0b0101) != 4 {
		t.Error("HammingDistance complementary nibbles != 4")
	}
	// The worst-case bit-reversal pair from the paper: 000...01 vs 100...0
	// differ in exactly 2 bits, but node 0b000000000001 must reach its
	// reversal across all 12 hypercube dimensions only when all differing
	// bits are counted; sanity check distance here.
	if HammingDistance(1, Reverse(1, 12)) != 2 {
		t.Error("HammingDistance(1, rev(1)) != 2")
	}
}

func TestGrayCodeAdjacency(t *testing.T) {
	for x := 0; x < 1<<10-1; x++ {
		if HammingDistance(GrayCode(x), GrayCode(x+1)) != 1 {
			t.Fatalf("Gray codes of %d and %d are not adjacent", x, x+1)
		}
	}
}

func TestGrayCodeInverse(t *testing.T) {
	f := func(x uint16) bool {
		v := int(x)
		return InverseGrayCode(GrayCode(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDigitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		b := 2 + rng.Intn(9)
		n := 1 + rng.Intn(6)
		x := rng.Intn(Pow(b, n))
		d := Digits(x, b, n)
		if len(d) != n {
			t.Fatalf("Digits(%d,%d,%d) returned %d digits", x, b, n, len(d))
		}
		if got := FromDigits(d, b); got != x {
			t.Fatalf("FromDigits(Digits(%d,%d,%d)) = %d", x, b, n, got)
		}
	}
}

func TestDigitsKnown(t *testing.T) {
	d := Digits(4095, 64, 2)
	if d[0] != 63 || d[1] != 63 {
		t.Errorf("Digits(4095,64,2) = %v", d)
	}
	d = Digits(130, 64, 2)
	if d[0] != 2 || d[1] != 2 {
		t.Errorf("Digits(130,64,2) = %v", d)
	}
}

func TestDigitsPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Digits overflow did not panic")
		}
	}()
	Digits(100, 10, 1)
}

func TestDigitAndSetDigit(t *testing.T) {
	x := FromDigits([]int{3, 1, 4}, 8) // 4*64 + 1*8 + 3
	if Digit(x, 8, 0) != 3 || Digit(x, 8, 1) != 1 || Digit(x, 8, 2) != 4 {
		t.Fatalf("Digit probes of %d wrong", x)
	}
	y := SetDigit(x, 8, 1, 7)
	if Digit(y, 8, 1) != 7 || Digit(y, 8, 0) != 3 || Digit(y, 8, 2) != 4 {
		t.Fatalf("SetDigit produced %d", y)
	}
}

func TestDigitReverseBinaryMatchesReverse(t *testing.T) {
	for x := 0; x < 256; x++ {
		if DigitReverse(x, 2, 8) != Reverse(x, 8) {
			t.Fatalf("DigitReverse(%d,2,8) != Reverse", x)
		}
	}
}

func TestDigitReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		b := 2 + rng.Intn(9)
		n := 1 + rng.Intn(5)
		x := rng.Intn(Pow(b, n))
		if DigitReverse(DigitReverse(x, b, n), b, n) != x {
			t.Fatalf("DigitReverse not involution for x=%d b=%d n=%d", x, b, n)
		}
	}
}

func TestShuffleInverse(t *testing.T) {
	const w = 10
	for x := 0; x < 1<<w; x++ {
		s := PerfectShuffle(x, w)
		if InverseShuffle(s, w) != x {
			t.Fatalf("InverseShuffle(PerfectShuffle(%d)) != identity", x)
		}
	}
}

func TestShuffleIsRotation(t *testing.T) {
	// log N applications of the perfect shuffle are the identity.
	const w = 8
	for x := 0; x < 1<<w; x++ {
		v := x
		for i := 0; i < w; i++ {
			v = PerfectShuffle(v, w)
		}
		if v != x {
			t.Fatalf("%d shuffles of %d gave %d", w, x, v)
		}
	}
}

func TestShuffleKnown(t *testing.T) {
	// 3-bit shuffle: abc -> bca.
	if PerfectShuffle(0b100, 3) != 0b001 {
		t.Error("shuffle of 100 wrong")
	}
	if PerfectShuffle(0b011, 3) != 0b110 {
		t.Error("shuffle of 011 wrong")
	}
}

func BenchmarkReverse12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Reverse(i&4095, 12)
	}
}

func BenchmarkDigits64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Digits(i&4095, 64, 2)
	}
}

func TestPanicPaths(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Pow negative exponent", func() { Pow(2, -1) })
	mustPanic("Reverse negative width", func() { Reverse(1, -1) })
	mustPanic("SetBit bad value", func() { SetBit(0, 1, 2) })
	mustPanic("Digits bad base", func() { Digits(1, 1, 1) })
	mustPanic("Digits negative count", func() { Digits(1, 2, -1) })
	mustPanic("Digits negative value", func() { Digits(-1, 2, 4) })
	mustPanic("FromDigits bad base", func() { FromDigits([]int{0}, 1) })
	mustPanic("FromDigits bad digit", func() { FromDigits([]int{5}, 4) })
	mustPanic("SetDigit bad value", func() { SetDigit(0, 4, 0, 9) })
}

func TestShuffleZeroWidth(t *testing.T) {
	if PerfectShuffle(5, 0) != 5 || InverseShuffle(5, 0) != 5 {
		t.Fatal("zero-width shuffles should be identity")
	}
}
