package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// The loader resolves types from the gc compiler's export data, located
// via `go list -deps -export -json -test`. This keeps fftlint fully
// offline (no module downloads) and exactly in sync with the toolchain
// that builds the repository: the same export data the compiler writes is
// the data we import. Type errors are collected, not fatal — analyzers
// receive partial information and must degrade gracefully.

// A Unit is one type-checking unit: a package together with its
// in-package test files, or an external _test package.
type Unit struct {
	PkgPath string // import path; external test units get a "_test" suffix
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	Hot     bool    // any file carries //fftlint:hot
	Errs    []error // non-fatal parse/type errors
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	ForTest      string
	Name         string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path string }
	Standard     bool
}

// An exportIndex maps import paths to gc export-data files, with
// test-variant entries ("q [p.test]") kept per tested package so a unit's
// imports resolve exactly the way `go test` would compile them.
type exportIndex struct {
	plain    map[string]string            // path -> export file
	variants map[string]map[string]string // tested pkg -> path -> export file
	pkgs     []*listPkg                   // module packages matching the patterns
}

func runGoList(moduleRoot string, patterns []string) (*exportIndex, error) {
	args := []string{
		"list", "-e", "-deps", "-test", "-export",
		"-json=ImportPath,Dir,Export,ForTest,Name,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles,Module,Standard",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	idx := &exportIndex{
		plain:    make(map[string]string),
		variants: make(map[string]map[string]string),
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		path := p.ImportPath
		if i := strings.Index(path, " ["); i >= 0 {
			path = path[:i]
		}
		if p.Export != "" {
			if p.ForTest != "" {
				m := idx.variants[p.ForTest]
				if m == nil {
					m = make(map[string]string)
					idx.variants[p.ForTest] = m
				}
				m[path] = p.Export
			} else {
				idx.plain[path] = p.Export
			}
		}
		if p.Module != nil && !p.Standard && p.ForTest == "" && !strings.HasSuffix(path, ".test") {
			idx.pkgs = append(idx.pkgs, p)
		}
	}
	return idx, nil
}

// expImporter resolves imports through gc export data. currentFor selects
// the test-variant view while units of one package are being checked;
// overrides let an external _test unit import the freshly checked
// in-package unit (so shared test helpers resolve).
type expImporter struct {
	idx        *exportIndex
	gc         types.Importer
	currentFor string
	overrides  map[string]*types.Package
}

func newExpImporter(fset *token.FileSet, idx *exportIndex) *expImporter {
	e := &expImporter{idx: idx, overrides: make(map[string]*types.Package)}
	e.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if m := idx.variants[e.currentFor]; m != nil {
			if f, ok := m[path]; ok {
				return os.Open(f)
			}
		}
		if f, ok := idx.plain[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", path)
	})
	return e
}

func (e *expImporter) Import(path string) (*types.Package, error) {
	if p, ok := e.overrides[path]; ok {
		return p, nil
	}
	return e.gc.Import(path)
}

// A Loader parses and type-checks module packages (or standalone testdata
// directories) into Units ready for analyzers.
type Loader struct {
	Fset *token.FileSet
	idx  *exportIndex
	imp  *expImporter
}

// NewLoader builds a loader for the module rooted at moduleRoot, with the
// export index computed over the given `go list` patterns.
func NewLoader(moduleRoot string, patterns []string) (*Loader, error) {
	idx, err := runGoList(moduleRoot, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{Fset: fset, idx: idx, imp: newExpImporter(fset, idx)}, nil
}

// Packages returns the units for every module package matched by the
// loader's patterns: one unit per package including its in-package test
// files, plus one per external _test package.
func (l *Loader) Packages() ([]*Unit, error) {
	var units []*Unit
	for _, p := range l.idx.pkgs {
		l.imp.currentFor = p.ImportPath
		base := l.check(p.ImportPath, p.Dir, p.Name, concat(p.GoFiles, p.CgoFiles, p.TestGoFiles))
		if base != nil {
			units = append(units, base)
		}
		if len(p.XTestGoFiles) > 0 {
			if base != nil && base.Pkg != nil {
				l.imp.overrides[p.ImportPath] = base.Pkg
			}
			x := l.check(p.ImportPath+"_test", p.Dir, p.Name+"_test", p.XTestGoFiles)
			if x != nil {
				units = append(units, x)
			}
			delete(l.imp.overrides, p.ImportPath)
		}
		l.imp.currentFor = ""
	}
	return units, nil
}

// Dir type-checks a standalone directory (an analysistest golden package)
// as a single unit with import path pkgPath. Imports must be resolvable
// from the loader's export index, i.e. limited to the standard library
// and packages of this module.
func (l *Loader) Dir(dir, pkgPath string) (*Unit, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	u := l.check(pkgPath, dir, "", files)
	if u == nil {
		return nil, fmt.Errorf("analysis: no parseable Go files in %s", dir)
	}
	return u, nil
}

// check parses and type-checks one unit. Parse and type errors are
// recorded in Unit.Errs; a unit is returned whenever at least one file
// parses.
func (l *Loader) check(pkgPath, dir, name string, fileNames []string) *Unit {
	u := &Unit{PkgPath: pkgPath, Dir: dir, Fset: l.Fset}
	for _, fn := range fileNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, fn), nil, parser.ParseComments)
		if err != nil {
			u.Errs = append(u.Errs, err)
		}
		if f != nil {
			u.Files = append(u.Files, f)
		}
	}
	if len(u.Files) == 0 {
		return nil
	}
	if name == "" {
		name = u.Files[0].Name.Name
	}
	u.Hot = hasHotDirective(u.Files)
	u.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer:    l.imp,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		Error:       func(err error) { u.Errs = append(u.Errs, err) },
	}
	pkg, _ := conf.Check(pkgPath, l.Fset, u.Files, u.Info) // errors already collected
	u.Pkg = pkg
	if u.Pkg == nil {
		u.Pkg = types.NewPackage(pkgPath, name)
	}
	return u
}

func concat(ss ...[]string) []string {
	var out []string
	for _, s := range ss {
		out = append(out, s...)
	}
	return out
}

// ModuleRoot walks upward from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// sharedLoader caches one full-module loader per module root for test
// harness use, so every analyzer test does not re-run `go list`.
var (
	sharedMu      sync.Mutex
	sharedLoaders = make(map[string]*Loader)
)

// SharedLoader returns a module-wide loader (patterns ./...) rooted at
// the module containing dir, building it on first use.
func SharedLoader(dir string) (*Loader, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if l, ok := sharedLoaders[root]; ok {
		return l, nil
	}
	l, err := NewLoader(root, []string{"./..."})
	if err != nil {
		return nil, err
	}
	sharedLoaders[root] = l
	return l, nil
}
