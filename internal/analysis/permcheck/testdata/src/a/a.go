// Package a is the permcheck golden package.
package a

import "repro/internal/permute"

// Positive: builds a Permutation in a loop and returns it unvalidated.
func badShuffle(n int) permute.Permutation { // want "badShuffle returns a permutation but never validates it"
	p := make(permute.Permutation, n)
	for i := range p {
		p[i] = (i + 1) % n
	}
	return p
}

// Positive: annotated constructor returning a raw []int, unvalidated.
//
//fftlint:permutation
func badRawPerm(n int) []int { // want "badRawPerm returns a permutation but never validates it"
	p := make([]int, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	return p
}

// Positive: partially delegating — one return is a bare ident.
func badMixed(n int, fallback bool) permute.Permutation { // want "badMixed returns a permutation but never validates it"
	if fallback {
		return permute.Identity(n)
	}
	p := make(permute.Permutation, n)
	return p
}

// Positive: constant non-power-of-two sizes at call sites.
func badSizes() {
	_ = permute.BitReversal(12)            // want "permute.BitReversal requires a power-of-two size; constant 12 is not"
	_ = permute.ButterflyExchange(6, 1)    // want "permute.ButterflyExchange requires a power-of-two size; constant 6 is not"
	_ = permute.PerfectShuffle(3 * region) // want "permute.PerfectShuffle requires a power-of-two size; constant 12 is not"
}

const region = 4

// Negative: validates its result before returning.
func goodValidated(n int) permute.Permutation {
	p := make(permute.Permutation, n)
	for i := range p {
		p[i] = (i + 2) % n
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// Negative: pure delegation to a validated constructor.
func goodDelegating(n int) permute.Permutation {
	return permute.BitReversal(n)
}

// Negative: power-of-two constant and non-constant sizes.
func goodSizes(n int) {
	_ = permute.BitReversal(16)
	_ = permute.BitReversal(n)
}

// Negative: returns []int without the annotation — not a permutation.
func plainSlice(n int) []int {
	s := make([]int, n)
	return s
}
