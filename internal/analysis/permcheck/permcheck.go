// Package permcheck enforces the paper's central structural invariant:
// every routing step must be a true permutation. It reports
//
//  1. constructors that return a permute.Permutation (or are annotated
//     //fftlint:permutation and return []int) without validating the
//     result — a silently wrong permutation turns a butterfly exchange
//     into data loss, which no unit test of the caller will attribute to
//     the constructor; and
//  2. call sites that pass a compile-time constant, non-power-of-two
//     size to the power-of-two permutation constructors (BitReversal,
//     PerfectShuffle, ButterflyExchange, Omega, OmegaInverse), which
//     otherwise only fail at run time by panicking.
//
// A constructor validates by calling one of Validate, MustValid,
// mustValid, IsPermutation or validatePermutation on its result, or by
// delegating: returning the call of another Permutation-returning
// function directly.
package permcheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "permcheck",
	Doc:  "flags unvalidated permutation constructors and constant non-power-of-two sizes",
	Run:  run,
}

// validators are the call names accepted as proof of validation.
var validators = map[string]bool{
	"Validate":            true,
	"MustValid":           true,
	"mustValid":           true,
	"IsPermutation":       true,
	"validatePermutation": true,
}

// pow2Ctors maps permute-package constructors to the index of their
// power-of-two size argument.
var pow2Ctors = map[string]int{
	"BitReversal":       0,
	"PerfectShuffle":    0,
	"ButterflyExchange": 0,
	"Omega":             0,
	"OmegaInverse":      0,
}

const permuteDirective = "//fftlint:permutation"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok {
				checkConstructor(pass, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkPow2Call(pass, call)
			}
			return true
		})
	}
	return nil
}

// checkConstructor reports fd if it builds a permutation without
// validating or delegating.
func checkConstructor(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || !isPermCtor(pass, fd) {
		return
	}
	validated := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if validators[calleeName(call)] {
			validated = true
		}
		return true
	})
	if validated {
		return
	}
	// Delegation: every return value is directly the result of another
	// Permutation-returning call, which is responsible for validation.
	delegates := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := res.(*ast.CallExpr)
			if !ok || !isPermType(pass.TypesInfo.Types[call].Type) {
				delegates = false
			}
		}
		return true
	})
	if delegates {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"%s returns a permutation but never validates it; call Validate (or MustValid) on the result, or delegate to a validated constructor", fd.Name.Name)
}

// isPermCtor reports whether fd declares a permutation constructor:
// a result of type permute.Permutation, or the //fftlint:permutation
// annotation together with a []int result.
func isPermCtor(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	annotated := false
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			t := strings.TrimSpace(c.Text)
			if t == permuteDirective || strings.HasPrefix(t, permuteDirective+" ") {
				annotated = true
			}
		}
	}
	for _, res := range fd.Type.Results.List {
		t := pass.TypesInfo.Types[res.Type].Type
		if t == nil {
			continue
		}
		if isPermType(t) {
			return true
		}
		if annotated && isIntSlice(t) {
			return true
		}
	}
	return false
}

// isPermType reports whether t is (a pointer to) the named type
// Permutation of an internal/permute package.
func isPermType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Permutation" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/permute")
}

func isIntSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// checkPow2Call reports permute constructors invoked with a constant
// size that is not a power of two.
func checkPow2Call(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	argIdx, ok := pow2Ctors[sel.Sel.Name]
	if !ok || argIdx >= len(call.Args) {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/permute") {
		return
	}
	tv := pass.TypesInfo.Types[call.Args[argIdx]]
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	n, ok := constant.Int64Val(tv.Value)
	if !ok {
		return
	}
	if n <= 0 || n&(n-1) != 0 {
		pass.Reportf(call.Args[argIdx].Pos(),
			"permute.%s requires a power-of-two size; constant %d is not", sel.Sel.Name, n)
	}
}

// calleeName returns the identifier a call resolves through ("Validate"
// for p.Validate(...) and for Validate(...)).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
