package permcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/permcheck"
)

func TestPermcheck(t *testing.T) {
	analysistest.Run(t, permcheck.Analyzer, "a")
}
