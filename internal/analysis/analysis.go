// Package analysis is a self-contained static-analysis framework for this
// repository, mirroring the golang.org/x/tools/go/analysis API shape on
// top of the standard library only (go/ast, go/types, go/importer). The
// build environment for this repository is fully offline with an empty
// module cache, so the x/tools multichecker cannot be vendored; fftlint
// (cmd/fftlint) therefore ships its own driver with the same Analyzer /
// Pass / Diagnostic vocabulary so analyzers could be ported to a real
// go/analysis vettool verbatim if x/tools ever becomes available.
//
// See docs/LINTING.md for the analyzer catalogue, the //fftlint:hot
// package directive and the //fftlint:ignore suppression syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one fftlint check. It is the stdlib-only analogue
// of golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //fftlint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description: first line is a summary.
	Doc string

	// Run applies the analyzer to one package. Diagnostics are emitted
	// through pass.Reportf; the returned error aborts the whole lint
	// run and is reserved for internal failures, not findings.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with the parsed, type-checked view of a
// single package (one type-checking unit: either a package together with
// its in-package test files, or an external _test package).
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File

	// Pkg and TypesInfo hold the (possibly partial) type-check result.
	// The loader tolerates type errors — analyzers must treat nil types
	// from TypesInfo as "unknown" and skip, never crash.
	Pkg       *types.Package
	TypesInfo *types.Info

	// PkgPath is the import path of the unit ("repro/internal/fft",
	// "repro/internal/fft_test" for the external test unit).
	PkgPath string

	// Hot reports whether any file of the package carries the
	// //fftlint:hot directive, marking it a hot-path package.
	Hot bool

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
