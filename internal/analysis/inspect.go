package analysis

import "go/ast"

// WithStack walks every node of every file, passing the path of ancestor
// nodes (outermost first, ending with n itself). Returning false from fn
// skips n's children. This replaces x/tools' inspector.WithStack for the
// handful of analyzers that need parent context.
//
// ast.Inspect only delivers the closing nil callback for nodes whose
// visit returned true, so a pruned node is popped immediately.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}
