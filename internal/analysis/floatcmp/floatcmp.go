// Package floatcmp flags exact == / != comparisons of floating-point or
// complex values. FFT outputs accumulate rounding error, so exact
// equality silently encodes "these two code paths are bitwise identical"
// — a much stronger (and usually unintended) claim than numerical
// agreement. Compare with a tolerance helper instead (fft.MaxAbsDiff
// against an epsilon, or math.Abs(a-b) <= eps), or suppress with
// //fftlint:ignore floatcmp <reason> where bitwise determinism really is
// the property under test.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags exact ==/!= comparisons of float or complex values",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := pass.TypesInfo.Types[be.X]
			ty := pass.TypesInfo.Types[be.Y]
			if tx.Value != nil && ty.Value != nil {
				return true // constant folding: compile-time comparison
			}
			t := floaty(tx.Type)
			if t == "" {
				t = floaty(ty.Type)
			}
			if t != "" {
				pass.Reportf(be.OpPos, "exact %s comparison of %s values; use a tolerance helper (MaxAbsDiff / math.Abs(a-b) <= eps)", be.Op, t)
			}
			return true
		})
	}
	return nil
}

// floaty names the float/complex kind of t, or returns "".
func floaty(t types.Type) string {
	if t == nil {
		return ""
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch {
	case b.Info()&types.IsFloat != 0:
		return "float"
	case b.Info()&types.IsComplex != 0:
		return "complex"
	}
	return ""
}
