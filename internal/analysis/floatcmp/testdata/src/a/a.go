// Package a is the floatcmp golden package: positive cases carry want
// comments, negative cases must stay silent.
package a

import "math"

type decibel float64

// Positive cases.

func eqFloat(a, b float64) bool {
	return a == b // want "exact == comparison of float values"
}

func neqFloatZero(d float64) bool {
	return d != 0 // want "exact != comparison of float values"
}

func eqComplex(a, b complex128) bool {
	return a == b // want "exact == comparison of complex values"
}

func eqNamedFloat(a, b decibel) bool {
	return a == b // want "exact == comparison of float values"
}

func neqFloat32(a float32) bool {
	return a != 1.5 // want "exact != comparison of float values"
}

// Negative cases.

func eqInt(a, b int) bool {
	return a == b
}

func constFold() bool {
	const x = 1.5
	const y = 3.0
	return x == y/2 // both operands constant: folded at compile time
}

func tolerance(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12
}

func ignored(a, b float64) bool {
	//fftlint:ignore floatcmp golden test of the suppression directive
	return a == b
}

func eqString(a, b string) bool {
	return a == b
}
