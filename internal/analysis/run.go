package analysis

import "fmt"

// Run applies every analyzer to every unit, filters findings through the
// //fftlint:ignore directives, and returns them sorted by position.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, u := range units {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
				PkgPath:   u.PkgPath,
				Hot:       u.Hot,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", u.PkgPath, a.Name, err)
			}
		}
		ignores := ignoresByFile(u.Fset, u.Files)
		for _, d := range diags {
			if !suppressed(d, ignores) {
				all = append(all, d)
			}
		}
	}
	sortDiagnostics(all)
	return all, nil
}
