// Package goleak flags goroutines spawned with no join or cancellation
// path. A goroutine the caller cannot stop or wait for outlives its
// request: under load each leaked goroutine pins its stack, its
// captures and (for connection handlers) its socket, and a server that
// leaks one goroutine per request falls over by memory long before it
// saturates by CPU.
//
// A `go` statement is accepted as managed when evidence of a lifecycle
// is reachable from it:
//
//   - the spawned body (or the spawned function's body, when it is
//     declared in the same package) references a context.Context — a
//     ctx.Done() select, a ctx-bounded call — or any channel value:
//     sends, receives, closes and range loops all tie the goroutine to
//     a peer that can release it;
//   - the body uses a sync.WaitGroup (Add/Done/Wait) — somebody joins
//     it; or
//   - the spawn call passes a context, a channel, or a *sync.WaitGroup
//     to a function declared elsewhere — the callee is assumed to
//     honour what it was handed.
//
// Spawns of local closure variables (work := func() {...}; go work())
// are checked by the closure's body, provided the variable is assigned
// exactly one literal.
//
// The check is per-spawn-site evidence, not a proof: a ctx that is
// never selected on still counts. That keeps the analyzer quiet on
// managed code and loud exactly where a goroutine holds nothing that
// could ever stop it — the fire-and-forget `go doWork()` with no
// arguments. Suppress deliberate daemon goroutines with
// //fftlint:ignore goleak <reason>.
package goleak

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "flags goroutines spawned without a reachable join or cancellation path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		decls:   declIndex(pass),
		lits:    litIndex(pass),
		scanned: make(map[*ast.FuncDecl]bool),
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !c.managed(g.Call) {
				pass.Reportf(g.Pos(),
					"goroutine has no join or cancellation path (no context, channel, or WaitGroup reachable); wire ctx.Done(), a stop channel, or a WaitGroup so it cannot outlive its caller")
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	lits    map[types.Object]*ast.FuncLit // local closure variables
	scanned map[*ast.FuncDecl]bool        // cycle guard for body scans
}

// declIndex maps function objects to their declarations in this unit,
// so spawns of package-local functions can be checked by body.
func declIndex(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// litIndex maps variables assigned exactly one function literal to that
// literal, so `work := func(...) {...}; go work(...)` is checked by the
// closure's body just like `go func(...) {...}(...)` would be. A
// variable reassigned a second literal is dropped — which body runs is
// then unknowable without flow analysis.
func litIndex(pass *analysis.Pass) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	ambiguous := make(map[types.Object]bool)
	record := func(id *ast.Ident, lit *ast.FuncLit) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, dup := out[obj]; dup {
			ambiguous[obj] = true
			return
		}
		out[obj] = lit
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						record(id, lit)
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, v := range n.Values {
					if lit, ok := v.(*ast.FuncLit); ok {
						record(n.Names[i], lit)
					}
				}
			}
			return true
		})
	}
	for obj := range ambiguous {
		delete(out, obj)
	}
	return out
}

// managed reports whether the spawned call shows lifecycle evidence.
func (c *checker) managed(call *ast.CallExpr) bool {
	// Lifecycle-typed arguments: the callee was handed something it can
	// block on or signal through.
	for _, a := range call.Args {
		if isLifecycleType(c.pass.TypesInfo.Types[a].Type) {
			return true
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return c.bodyHasEvidence(fun.Body)
	case *ast.Ident:
		// A local variable holding a closure: check the closure's body.
		if obj := c.pass.TypesInfo.Uses[fun]; obj != nil {
			if lit, ok := c.lits[obj]; ok {
				return c.bodyHasEvidence(lit.Body)
			}
		}
	}
	if fn := calleeFunc(c.pass, call); fn != nil {
		if fd, ok := c.decls[fn]; ok {
			if c.scanned[fd] {
				return false // recursion: no evidence found elsewhere
			}
			c.scanned[fd] = true
			ok := c.bodyHasEvidence(fd.Body)
			delete(c.scanned, fd)
			return ok
		}
	}
	return false
}

// calleeFunc resolves the called function object, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// bodyHasEvidence scans a function body for lifecycle evidence:
// context- or channel-typed expressions, or WaitGroup method calls.
// Package-local calls inside the body are followed, so a goroutine
// running a thin wrapper around a managed loop still counts.
func (c *checker) bodyHasEvidence(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isWaitGroupMethod(c.pass, n) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if fn := calleeFunc(c.pass, n); fn != nil {
				if fd, ok := c.decls[fn]; ok && !c.scanned[fd] {
					c.scanned[fd] = true
					if c.bodyHasEvidence(fd.Body) {
						found = true
					}
					delete(c.scanned, fd)
					if found {
						return false
					}
				}
			}
		}
		if e, ok := n.(ast.Expr); ok {
			if isLifecycleType(c.pass.TypesInfo.Types[e].Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isLifecycleType reports whether t can carry a join/cancellation
// signal: a context.Context, any channel, or a *sync.WaitGroup.
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "context" && obj.Name() == "Context":
		return true
	case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
		return true
	}
	return false
}

// isWaitGroupMethod reports whether sel names Add/Done/Wait on a
// sync.WaitGroup.
func isWaitGroupMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}
