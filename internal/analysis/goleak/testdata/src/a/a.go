// Package a is the goleak golden package.
package a

import (
	"context"
	"sync"
	"time"
)

// Positive: fire-and-forget literal holding nothing that can stop it.
func fireAndForget() {
	go func() { // want "goroutine has no join or cancellation path"
		for {
			time.Sleep(time.Second)
		}
	}()
}

// Positive: spawning a package-local function whose body has no
// lifecycle evidence either.
func spinner() {
	for {
		time.Sleep(time.Millisecond)
	}
}

func spawnSpinner() {
	go spinner() // want "goroutine has no join or cancellation path"
}

// Positive: argument types carry no lifecycle either.
func logEvery(d time.Duration) {
	for {
		time.Sleep(d)
	}
}

func spawnLogger() {
	go logEvery(time.Second) // want "goroutine has no join or cancellation path"
}

// Positive, suppressed: a deliberate daemon goroutine with a reason.
func daemon() {
	//fftlint:ignore goleak golden suppression case: process-lifetime daemon, dies with the program
	go spinner()
}

// Negative: the body selects on ctx.Done().
func watch(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
}

// Negative: a WaitGroup joins the goroutine.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
	}()
	wg.Wait()
}

// Negative: delivering on a channel ties the goroutine to a receiver.
func resultDelivery() int {
	resc := make(chan int, 1)
	go func() { resc <- 42 }()
	return <-resc
}

// Negative: a package-local worker loop draining a channel is managed —
// closing the channel releases it.
type pool struct {
	jobs chan func()
}

func (p *pool) worker() {
	for j := range p.jobs {
		j()
	}
}

func (p *pool) start() {
	go p.worker()
}

// Negative: a local closure variable whose body joins a WaitGroup is
// resolved to its literal, same as spawning the literal directly.
func closureVar(n int) {
	var wg sync.WaitGroup
	work := func(i int) {
		defer wg.Done()
		time.Sleep(time.Duration(i))
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go work(i)
	}
	wg.Wait()
}

// Positive: the closure variable is reassigned, so which body runs is
// unknowable — no evidence is credited.
func reassignedClosure(quiet bool) {
	work := func() {
		ch := make(chan struct{})
		<-ch
	}
	if quiet {
		work = func() { time.Sleep(time.Second) }
	}
	go work() // want "goroutine has no join or cancellation path"
}

// Negative: handing a context to an out-of-package callee counts as
// managed — the callee is assumed to honour it.
func delegate(ctx context.Context) {
	go sleepCtx(ctx)
}

//go:noinline
func sleepCtx(ctx context.Context) {
	<-ctx.Done()
}
