// Package ctxflow checks how cancellation context and locks flow through
// request-serving code. It reports
//
//  1. HTTP handlers (func(w http.ResponseWriter, r *http.Request)) whose
//     request parameter is named but never used — such handlers cannot
//     observe r.Context() cancellation; either use the request or rename
//     the parameter to _ to make the choice explicit;
//  2. calls to context.Background() or context.TODO() inside functions
//     that already receive an *http.Request or a context.Context —
//     minting a fresh root context severs cancellation and deadline
//     propagation; and
//  3. blocking operations (channel send/receive, select without default,
//     WaitGroup.Wait, net/http and net calls, time.Sleep) performed
//     while a sync.Mutex/RWMutex is held. A lock held across blocking
//     I/O serialises every other request on that lock behind the
//     slowest peer — the exact convoy the server's worker pool exists
//     to avoid.
//
// The lock analysis is a source-order heuristic within one function
// body, not a control-flow analysis: an Unlock on any path closes the
// window, deferred Unlocks leave it open until function end, and nested
// function literals are analysed independently.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags handlers ignoring their request, fresh root contexts, and locks held across blocking ops",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, body = n.Type, n.Body
			case *ast.FuncLit:
				ft, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkHandlerRequest(pass, ft, body)
			checkFreshContext(pass, ft, body)
			checkLockedBlocking(pass, body)
			return true
		})
	}
	return nil
}

// checkHandlerRequest reports a handler whose *http.Request parameter is
// named but unused.
func checkHandlerRequest(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	params := flatParams(ft)
	if len(params) != 2 {
		return
	}
	if !isNamedType(paramType(pass, params[0]), "net/http", "ResponseWriter") {
		return
	}
	reqT := paramType(pass, params[1])
	ptr, ok := reqT.(*types.Pointer)
	if !ok || !isNamedType(ptr.Elem(), "net/http", "Request") {
		return
	}
	ident := params[1].ident
	if ident == nil || ident.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Defs[ident]
	if obj == nil || usesObject(pass, body, obj) {
		return
	}
	pass.Reportf(ident.Pos(),
		"handler ignores its *http.Request %q (no r.Context() cancellation); use the request or rename the parameter to _", ident.Name)
}

// checkFreshContext reports context.Background()/TODO() calls inside a
// function that already has a request or context to derive from.
func checkFreshContext(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	has := false
	for _, p := range flatParams(ft) {
		t := paramType(pass, p)
		if ptr, ok := t.(*types.Pointer); ok && isNamedType(ptr.Elem(), "net/http", "Request") {
			has = true
		}
		if isNamedType(t, "context", "Context") {
			has = true
		}
	}
	if !has {
		return
	}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			pass.Reportf(call.Pos(),
				"context.%s() inside a function that already has a request/context; derive from it instead", sel.Sel.Name)
		}
	})
}

// --- lock-held-across-blocking heuristic ---

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evBlocking
)

type event struct {
	pos  token.Pos
	kind eventKind
	key  string // lock identity: receiver expression + r/w class
	desc string // blocking-op description
}

func checkLockedBlocking(pass *analysis.Pass, body *ast.BlockStmt) {
	// Communication statements of select cases are modelled by the
	// select itself, not as standalone sends/receives.
	commStmts := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					commStmts[cc.Comm] = true
				}
			}
		}
		return true
	})

	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		if commStmts[n] {
			return false
		}
		switch n := n.(type) {
		case nil:
			return true
		case *ast.FuncLit:
			return false // analysed independently
		case *ast.DeferStmt:
			// A deferred Unlock holds the lock to function end (the
			// window stays open) and a deferred blocking call runs after
			// return, outside the window model: skip the whole subtree.
			return false
		case *ast.SendStmt:
			events = append(events, event{n.Pos(), evBlocking, "", "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, event{n.Pos(), evBlocking, "", "channel receive"})
			}
		case *ast.SelectStmt:
			blocking := true
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					blocking = false // has a default clause
				}
			}
			if blocking {
				events = append(events, event{n.Pos(), evBlocking, "", "select"})
			}
		case *ast.CallExpr:
			if ev, ok := lockEvent(pass, n); ok {
				events = append(events, ev)
			} else if desc := blockingCall(pass, n); desc != "" {
				events = append(events, event{n.Pos(), evBlocking, "", desc})
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	type held struct {
		key string
		pos token.Pos
	}
	var open []held // insertion-ordered so reports are deterministic
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			open = append(open, held{ev.key, ev.pos})
		case evUnlock:
			for i, h := range open {
				if h.key == ev.key {
					open = append(open[:i], open[i+1:]...)
					break
				}
			}
		case evBlocking:
			if len(open) > 0 {
				h := open[0]
				pass.Reportf(ev.pos, "%s while holding %s (locked at line %d); release the lock around blocking operations",
					ev.desc, displayKey(h.key), pass.Fset.Position(h.pos).Line)
			}
		}
	}
}

// displayKey strips the read/write class suffix from a lock key.
func displayKey(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[:i]
	}
	return key
}

// lockEvent classifies call as a Lock/Unlock on a sync mutex.
func lockEvent(pass *analysis.Pass, call *ast.CallExpr) (event, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return event{}, false
	}
	var kind eventKind
	var class string
	switch sel.Sel.Name {
	case "Lock":
		kind, class = evLock, "w"
	case "Unlock":
		kind, class = evUnlock, "w"
	case "RLock":
		kind, class = evLock, "r"
	case "RUnlock":
		kind, class = evUnlock, "r"
	default:
		return event{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return event{}, false
	}
	key := types.ExprString(sel.X)
	return event{call.Pos(), kind, key + "/" + class, key}, true
}

// blockingCall describes call if it is a known blocking operation.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "sync" && name == "Wait" && recvNamed(fn) == "WaitGroup":
		// sync.Cond.Wait is exempt: it atomically releases the mutex it
		// was constructed with — that IS the condition-variable protocol.
		return "sync.WaitGroup.Wait"
	case path == "time" && name == "Sleep":
		return "time.Sleep"
	case path == "net" || path == "net/http" || strings.HasPrefix(path, "net/"):
		return path + " call"
	}
	return ""
}

// recvNamed returns the name of fn's receiver's named type ("" for
// plain functions).
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// --- small helpers ---

type param struct {
	ident *ast.Ident
	typ   ast.Expr
}

// flatParams expands a field list so every name (or anonymous slot) pairs
// with its type expression.
func flatParams(ft *ast.FuncType) []param {
	var out []param
	if ft.Params == nil {
		return out
	}
	for _, f := range ft.Params.List {
		if len(f.Names) == 0 {
			out = append(out, param{nil, f.Type})
			continue
		}
		for _, name := range f.Names {
			out = append(out, param{name, f.Type})
		}
	}
	return out
}

func paramType(pass *analysis.Pass, p param) types.Type {
	return pass.TypesInfo.Types[p.typ].Type
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func usesObject(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

func inspectSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
