// Package ctxflow checks how cancellation context flows through
// request-serving code. It reports
//
//  1. HTTP handlers (func(w http.ResponseWriter, r *http.Request)) whose
//     request parameter is named but never used — such handlers cannot
//     observe r.Context() cancellation; either use the request or rename
//     the parameter to _ to make the choice explicit; and
//  2. calls to context.Background() or context.TODO() inside functions
//     that already receive an *http.Request or a context.Context —
//     minting a fresh root context severs cancellation and deadline
//     propagation.
//
// The lock-held-across-blocking check that used to live here is its own
// analyzer now (internal/analysis/lockhold), with a wider notion of
// blocking: see that package.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags handlers ignoring their request and fresh root contexts minted under an existing one",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, body = n.Type, n.Body
			case *ast.FuncLit:
				ft, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkHandlerRequest(pass, ft, body)
			checkFreshContext(pass, ft, body)
			return true
		})
	}
	return nil
}

// checkHandlerRequest reports a handler whose *http.Request parameter is
// named but unused.
func checkHandlerRequest(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	params := flatParams(ft)
	if len(params) != 2 {
		return
	}
	if !isNamedType(paramType(pass, params[0]), "net/http", "ResponseWriter") {
		return
	}
	reqT := paramType(pass, params[1])
	ptr, ok := reqT.(*types.Pointer)
	if !ok || !isNamedType(ptr.Elem(), "net/http", "Request") {
		return
	}
	ident := params[1].ident
	if ident == nil || ident.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Defs[ident]
	if obj == nil || usesObject(pass, body, obj) {
		return
	}
	pass.Reportf(ident.Pos(),
		"handler ignores its *http.Request %q (no r.Context() cancellation); use the request or rename the parameter to _", ident.Name)
}

// checkFreshContext reports context.Background()/TODO() calls inside a
// function that already has a request or context to derive from.
func checkFreshContext(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	has := false
	for _, p := range flatParams(ft) {
		t := paramType(pass, p)
		if ptr, ok := t.(*types.Pointer); ok && isNamedType(ptr.Elem(), "net/http", "Request") {
			has = true
		}
		if isNamedType(t, "context", "Context") {
			has = true
		}
	}
	if !has {
		return
	}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			pass.Reportf(call.Pos(),
				"context.%s() inside a function that already has a request/context; derive from it instead", sel.Sel.Name)
		}
	})
}

// --- small helpers ---

type param struct {
	ident *ast.Ident
	typ   ast.Expr
}

// flatParams expands a field list so every name (or anonymous slot) pairs
// with its type expression.
func flatParams(ft *ast.FuncType) []param {
	var out []param
	if ft.Params == nil {
		return out
	}
	for _, f := range ft.Params.List {
		if len(f.Names) == 0 {
			out = append(out, param{nil, f.Type})
			continue
		}
		for _, name := range f.Names {
			out = append(out, param{name, f.Type})
		}
	}
	return out
}

func paramType(pass *analysis.Pass, p param) types.Type {
	return pass.TypesInfo.Types[p.typ].Type
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func usesObject(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

func inspectSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
