// Package a is the ctxflow golden package.
package a

import (
	"context"
	"net/http"
)

// Positive: the request parameter is named but never used, so the
// handler cannot observe cancellation.
func deadHandler(w http.ResponseWriter, r *http.Request) { // want "handler ignores its \\*http.Request \"r\""
	w.WriteHeader(http.StatusOK)
}

// Positive: a fresh root context severs cancellation.
func freshRoot(ctx context.Context) context.Context {
	return context.Background() // want "context.Background\\(\\) inside a function that already has a request/context"
}

// Positive: fresh context minted inside a handler that has a request.
func mintingHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.TODO() // want "context.TODO\\(\\) inside a function that already has a request/context"
	_ = ctx
	_ = r.Header
}

// Positive, suppressed: the directive with a reason silences the finding.
func suppressedRoot(ctx context.Context) context.Context {
	//fftlint:ignore ctxflow golden suppression case: detached audit context is intentional here
	return context.Background()
}

// Negative: handler that uses its request context.
func goodHandler(w http.ResponseWriter, r *http.Request) {
	select {
	case <-r.Context().Done():
	default:
	}
	w.WriteHeader(http.StatusOK)
}

// Negative: explicitly anonymous request parameter.
func staticHandler(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusNoContent)
}

// Negative: root contexts are fine where no request or context exists.
func setup() context.Context {
	return context.Background()
}
