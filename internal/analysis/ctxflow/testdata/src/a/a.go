// Package a is the ctxflow golden package.
package a

import (
	"context"
	"net/http"
	"sync"
	"time"
)

var mu sync.Mutex
var ch = make(chan int)

// Positive: the request parameter is named but never used, so the
// handler cannot observe cancellation.
func deadHandler(w http.ResponseWriter, r *http.Request) { // want "handler ignores its \\*http.Request \"r\""
	w.WriteHeader(http.StatusOK)
}

// Positive: a fresh root context severs cancellation.
func freshRoot(ctx context.Context) context.Context {
	return context.Background() // want "context.Background\\(\\) inside a function that already has a request/context"
}

// Positive: fresh context minted inside a handler that has a request.
func mintingHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.TODO() // want "context.TODO\\(\\) inside a function that already has a request/context"
	_ = ctx
	_ = r.Header
}

// Positive: channel receive while holding the mutex.
func recvUnderLock() int {
	mu.Lock()
	v := <-ch // want "channel receive while holding mu"
	mu.Unlock()
	return v
}

// Positive: deferred unlock keeps the lock held across the send.
func sendUnderDeferredLock() {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1 // want "channel send while holding mu"
}

// Positive: sleeping while locked.
func sleepUnderLock() {
	mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding mu"
	mu.Unlock()
}

// Positive: waiting on a WaitGroup while holding the mutex.
func waitGroupUnderLock(wg *sync.WaitGroup) {
	mu.Lock()
	defer mu.Unlock()
	wg.Wait() // want "sync.WaitGroup.Wait while holding mu"
}

// Negative: Cond.Wait atomically releases its mutex — that is the
// condition-variable protocol, not a lock held across a block.
var cond = sync.NewCond(&mu)

func condWaitUnderLock(ready func() bool) {
	mu.Lock()
	defer mu.Unlock()
	for !ready() {
		cond.Wait()
	}
}

// Negative: handler that uses its request context.
func goodHandler(w http.ResponseWriter, r *http.Request) {
	select {
	case <-r.Context().Done():
	default:
	}
	w.WriteHeader(http.StatusOK)
}

// Negative: explicitly anonymous request parameter.
func staticHandler(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusNoContent)
}

// Negative: the lock is released before blocking.
func unlockThenRecv() int {
	mu.Lock()
	x := 1
	mu.Unlock()
	return x + <-ch
}

// Negative: select with a default clause does not block.
func nonBlockingSelect() int {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// Negative: root contexts are fine where no request or context exists.
func setup() context.Context {
	return context.Background()
}
