// Package lockcopy flags values containing sync primitives (Mutex,
// RWMutex, WaitGroup, Once, Cond) that are copied: by-value receivers,
// by-value parameters, plain assignments from existing variables, and
// by-value range iteration. A copied lock guards nothing — goroutines
// synchronising through the copy and the original silently race. This is
// a stricter, repo-local cousin of `go vet -copylocks` that also covers
// the by-value range case and runs in the same fftlint pass as the other
// invariants.
package lockcopy

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcopy",
	Doc:  "flags sync.Mutex/WaitGroup (and friends) copied by value",
	Run:  run,
}

var syncLockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncType(pass, n.Type)
				if n.Recv != nil {
					checkFieldList(pass, n.Recv, "receiver")
				}
			case *ast.FuncLit:
				checkFuncType(pass, n.Type)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkFuncType(pass *analysis.Pass, ft *ast.FuncType) {
	checkFieldList(pass, ft.Params, "parameter")
}

func checkFieldList(pass *analysis.Pass, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if lock := containsLock(t); lock != "" {
			pass.Reportf(field.Type.Pos(),
				"%s passes %s by value, copying sync.%s; use a pointer", kind, typeName(t), lock)
		}
	}
}

// checkAssign flags `dst = src` / `dst := src` where src is an existing
// addressable value (not a freshly constructed literal or call result)
// whose type contains a lock.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		switch rhs.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue // composite literal, call, conversion: construction, not copy
		}
		t := pass.TypesInfo.Types[rhs].Type
		if lock := containsLock(t); lock != "" {
			pass.Reportf(as.Lhs[i].Pos(),
				"assignment copies %s, which contains sync.%s; use a pointer", typeName(t), lock)
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	t := pass.TypesInfo.Types[rng.Value].Type
	if t == nil {
		// `for _, v := range ...` defines v rather than using it, so its
		// type lives in Defs.
		if id, ok := rng.Value.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				t = obj.Type()
			}
		}
	}
	if lock := containsLock(t); lock != "" {
		pass.Reportf(rng.Value.Pos(),
			"range copies %s elements, which contain sync.%s; iterate by index or use pointers", typeName(t), lock)
	}
}

// containsLock returns the sync type name embedded (transitively, by
// value) in t, or "".
func containsLock(t types.Type) string {
	return findLock(t, make(map[types.Type]bool))
}

func findLock(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := findLock(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return findLock(u.Elem(), seen)
	}
	return ""
}

func typeName(t types.Type) string {
	if t == nil {
		return "value"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
