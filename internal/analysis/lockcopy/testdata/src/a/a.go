// Package a is the lockcopy golden package.
package a

import "sync"

type guarded struct {
	mu    sync.Mutex
	count int
}

// Positive: sync.Mutex passed by value.
func byValueMutex(mu sync.Mutex) { // want "parameter passes sync.Mutex by value, copying sync.Mutex"
	mu.Lock()
	defer mu.Unlock()
}

// Positive: by-value receiver on a lock-carrying struct.
func (g guarded) byValueReceiver() int { // want "receiver passes a.guarded by value, copying sync.Mutex"
	return g.count
}

// Positive: assignment copies an existing lock-carrying value.
func copyAssign(g guarded) int { // want "parameter passes a.guarded by value, copying sync.Mutex"
	cp := g // want "assignment copies a.guarded, which contains sync.Mutex"
	return cp.count
}

// Positive: range copies lock-carrying elements by value.
func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range copies a.guarded elements, which contain sync.Mutex"
		total += g.count
	}
	return total
}

// Positive: WaitGroup by value.
func byValueWaitGroup(wg sync.WaitGroup) { // want "parameter passes sync.WaitGroup by value, copying sync.WaitGroup"
	wg.Wait()
}

// Negative: pointers are fine.
func byPointer(g *guarded, mu *sync.Mutex) int {
	mu.Lock()
	defer mu.Unlock()
	return g.count
}

// Negative: constructing a fresh value is not a copy.
func construct() *guarded {
	g := guarded{count: 1}
	return &g
}

// Negative: iterating by index avoids the copy.
func rangeByIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].count
	}
	return total
}
