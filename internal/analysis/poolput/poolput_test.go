package poolput_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolput"
)

func TestPoolput(t *testing.T) {
	analysistest.Run(t, poolput.Analyzer, "a")
}
