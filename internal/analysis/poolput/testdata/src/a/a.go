// Package a is the poolput golden package.
package a

import "sync"

type scratch struct{ buf []byte }

var pool = sync.Pool{New: func() any { return new(scratch) }}
var other = sync.Pool{New: func() any { return new(scratch) }}

func use(s *scratch) {}

// Positive: Get with no Put anywhere.
func leak() {
	s := pool.Get().(*scratch) // want "sync.Pool.Get from pool with no Put"
	use(s)
}

// Positive: the Put goes to a different pool — the Get's pool is never
// repaid.
func crossPool() {
	s := pool.Get().(*scratch) // want "sync.Pool.Get from pool with no Put"
	use(s)
	other.Put(s)
}

// Positive: discarded Get result can never be Put back.
func discard() {
	_ = pool.Get() // want "sync.Pool.Get from pool with no Put"
}

// Positive, suppressed: the Put happens in a named release function the
// directive points at.
func handoff() *scratch {
	//fftlint:ignore poolput golden suppression case: released by put() at end of request
	s := pool.Get().(*scratch)
	use(s)
	out := s
	return out
}

// Negative: deferred Put.
func balancedDefer() {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	use(s)
}

// Negative: Put inside a deferred closure.
func balancedClosure() {
	s := pool.Get().(*scratch)
	defer func() { pool.Put(s) }()
	use(s)
}

// Negative: straight-line Put.
func balancedInline() {
	s := pool.Get().(*scratch)
	use(s)
	pool.Put(s)
}

// Negative: get-style wrapper — returning the value transfers the Put
// obligation to the caller.
func getScratch() *scratch {
	s := pool.Get().(*scratch)
	s.buf = s.buf[:0]
	return s
}

// Negative: the matching put-style wrapper has Put without Get.
func putScratch(s *scratch) {
	pool.Put(s)
}
