// Package poolput flags sync.Pool.Get calls with no matching Put in the
// same function. A pool that is only ever drained degenerates into
// plain allocation with extra steps — worse, because every miss also
// pays the pool's bookkeeping. The serving path's scratch buffers
// (internal/server) lean on Get/Put symmetry to stay off the allocator;
// a forgotten Put is invisible to tests (everything still works) and
// only shows up as allocs/op creep under load.
//
// Accepted shapes:
//
//   - a Put on the same pool expression anywhere in the function — a
//     plain call, a deferred call, or a call inside a deferred closure
//     (defer func() { p.Put(b) }());
//   - the Get result is returned to the caller — get-style wrappers
//     (getXBuf) transfer the Put obligation upward.
//
// The match is per pool expression (types.ExprString), the same
// source-order heuristic the lockhold analyzer uses for lock identity.
// A Get whose Put lives in a different function (other than via return)
// needs //fftlint:ignore poolput <reason> naming where the Put happens.
package poolput

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolput",
	Doc:  "flags sync.Pool.Get without a guaranteed Put (or ownership transfer) in the same function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

type getSite struct {
	call *ast.CallExpr
	key  string
	obj  types.Object // variable receiving the result, if any
}

// checkFunc audits one top-level function, nested literals included:
// a Put inside a closure still returns the value to the pool, and a
// Get inside a closure still owes one.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var gets []getSite
	puts := make(map[string]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isPoolMethod(pass, sel) {
			return true
		}
		key := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Get":
			gets = append(gets, getSite{call: call, key: key})
		case "Put":
			puts[key] = true
		}
		return true
	})
	if len(gets) == 0 {
		return
	}

	// Resolve which variable each Get lands in, through an optional
	// type assertion: b := pool.Get().(*T).
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			inner := rhs
			if ta, ok := inner.(*ast.TypeAssertExpr); ok {
				inner = ta.X
			}
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				continue
			}
			for gi := range gets {
				if gets[gi].call != call {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						gets[gi].obj = obj
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						gets[gi].obj = obj
					}
				}
			}
		}
		return true
	})

	for _, g := range gets {
		if puts[g.key] {
			continue
		}
		if g.obj != nil && returned(pass, body, g.obj) {
			continue
		}
		pass.Reportf(g.call.Pos(),
			"sync.Pool.Get from %s with no Put on any path in this function; defer %s.Put(...) or return the value to transfer ownership", g.key, g.key)
	}
}

// isPoolMethod reports whether sel names Get/Put on a sync.Pool.
func isPoolMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Get" && sel.Sel.Name != "Put" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// returned reports whether obj appears in a return statement of this
// function (not of nested literals).
func returned(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	out := false
	ast.Inspect(body, func(n ast.Node) bool {
		if out {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			for _, res := range r.Results {
				if id, ok := res.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					out = true
				}
			}
		}
		return true
	})
	return out
}
