// Package spanend audits internal/obs span lifecycles. A span that is
// started but never ended reports a duration that silently stretches to
// whenever the snapshot happens — the trace lies, and the slow-request
// ring captures phantom tail latency. It reports
//
//  1. a span-starting call (Tracer.Start, Tracer.StartRPC,
//     Tracer.StartUnder, obs.StartChild, Span.Child) whose result is
//     discarded — the span can never be ended;
//  2. a started span with no End() call anywhere in the function —
//     unless the span is returned, stored, or passed on, which hands
//     the obligation to someone else; and
//  3. a started span whose End() is not deferred while a return
//     statement sits between the start and the first End — an early
//     exit on that path leaves the span open; defer sp.End() instead.
//
// It also checks context propagation into goroutines: a function that
// receives a context.Context but spawns a goroutine referencing no
// context at all detaches that goroutine from the span tree and from
// cancellation — per-request tracers then blame the wrong request, and
// the goroutine survives its request (see also the goleak analyzer).
// Chained setters (StartChild(...).SetCat(...)) return the same span
// and are not counted as fresh starts.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "flags obs spans not ended on every path and goroutines spawned without the caller's context",
	Run:  run,
}

const obsPath = "repro/internal/obs"

// starters are the functions that mint a new span; the chained setters
// (SetCat, SetDetail, AddSteps) return the same span and do not count.
var starters = map[string]bool{
	"Start":      true,
	"StartRPC":   true,
	"StartUnder": true,
	"StartChild": true,
	"Child":      true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, body = n.Type, n.Body
			case *ast.FuncLit:
				ft, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkSpans(pass, body)
			checkGoCtx(pass, ft, body)
			return true
		})
	}
	return nil
}

// checkSpans applies the span-lifecycle rules to one function body.
// Nested literals are walked too (a span started in a closure must end
// in that closure or be deferred there), but starts inside a nested
// literal belong to the literal's own invocation of checkSpans.
func checkSpans(pass *analysis.Pass, body *ast.BlockStmt) {
	type started struct {
		pos token.Pos
		obj types.Object // variable holding the span; nil when discarded
	}
	var starts []started

	ownStmts(body, func(stmt ast.Stmt) {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isStarterChain(pass, call) {
				pass.Reportf(call.Pos(), "span started and discarded; it can never be ended — assign it and defer its End()")
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return
			}
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isStarterChain(pass, call) {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					pass.Reportf(call.Pos(), "span started and discarded; it can never be ended — assign it and defer its End()")
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				starts = append(starts, started{call.Pos(), obj})
			}
		}
	})

	for _, st := range starts {
		if st.obj == nil {
			continue
		}
		ends, deferred := endCalls(pass, body, st.obj)
		if len(ends) == 0 {
			if escapes(pass, body, st.obj, st.pos) {
				continue // returned/stored/passed on: obligation transferred
			}
			pass.Reportf(st.pos, "span is never ended in this function; defer %s.End() right after the start", st.obj.Name())
			continue
		}
		if deferred {
			continue
		}
		firstEnd := ends[0]
		if ret := returnBetween(body, st.pos, firstEnd); ret.IsValid() {
			pass.Reportf(st.pos, "span is not ended on every return path (return at line %d exits before End); defer %s.End() instead",
				pass.Fset.Position(ret).Line, st.obj.Name())
		}
	}
}

// ownStmts visits statements of body including nested blocks but NOT
// nested function literals.
func ownStmts(body *ast.BlockStmt, fn func(ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			fn(s)
		}
		return true
	})
}

// isStarterChain reports whether call mints a span: its outermost call
// returns *obs.Span and somewhere down the selector chain sits one of
// the starter functions. SetCat/SetDetail chains on top of a starter
// still count as the mint; a bare SetCat on an existing span does not.
func isStarterChain(pass *analysis.Pass, call *ast.CallExpr) bool {
	if !isSpanPtr(pass.TypesInfo.Types[call].Type) {
		return false
	}
	for {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			if id, ok := call.Fun.(*ast.Ident); ok && starters[id.Name] {
				if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && fromObs(fn) {
					return true
				}
			}
			return false
		}
		if starters[sel.Sel.Name] {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fromObs(fn) {
				return true
			}
		}
		inner, ok := sel.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		call = inner
	}
}

func fromObs(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == obsPath
}

func isSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil && obj.Pkg().Path() == obsPath
}

// endCalls finds End() calls on obj anywhere in body (nested literals
// included — a deferred closure ending the span counts). deferred is
// true when at least one End runs under a defer.
func endCalls(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) (positions []token.Pos, deferred bool) {
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				walk(m.Call, true)
				return false
			case *ast.CallExpr:
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
					if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
						positions = append(positions, m.Pos())
						if inDefer {
							deferred = true
						}
					}
				}
			case *ast.FuncLit:
				// A literal invoked or deferred here inherits inDefer:
				// `defer func() { sp.End() }()` is a deferred End.
				walk(m.Body, inDefer)
				return false
			}
			return true
		})
	}
	walk(body, false)
	sortPos(positions)
	return positions, deferred
}

func sortPos(ps []token.Pos) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// escapes reports whether obj is returned, stored into a field/map/
// slice, sent on a channel, or passed to a call after pos — all ways
// the End obligation can legitimately leave this function.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	out := false
	ast.Inspect(body, func(n ast.Node) bool {
		if out || n == nil || n.Pos() <= pos {
			return !out
		}
		uses := func(e ast.Expr) bool {
			id, ok := e.(*ast.Ident)
			return ok && pass.TypesInfo.Uses[id] == obj
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if uses(r) {
					out = true
				}
			}
		case *ast.CallExpr:
			for _, a := range n.Args {
				if uses(a) {
					out = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if uses(r) {
					out = true
				}
			}
		case *ast.SendStmt:
			if uses(n.Value) {
				out = true
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					if uses(kv.Value) {
						out = true
					}
				} else if uses(e) {
					out = true
				}
			}
		}
		return !out
	})
	return out
}

// returnBetween finds a return statement of this function (not of
// nested literals) positioned after start and before end.
func returnBetween(body *ast.BlockStmt, start, end token.Pos) token.Pos {
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			if r.Pos() > start && r.Pos() < end {
				found = r.Pos()
			}
		}
		return true
	})
	return found
}

// checkGoCtx reports goroutines spawned inside a context-carrying
// function that reference no context at all.
func checkGoCtx(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	hasCtx := false
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			if t := pass.TypesInfo.Types[f.Type].Type; isContext(t) {
				hasCtx = true
			}
		}
	}
	if !hasCtx {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goUsesContext(pass, g.Call) {
			return true
		}
		pass.Reportf(g.Pos(),
			"goroutine spawned without the function's context; the span tree and cancellation do not propagate — pass ctx (or a derived one) into the goroutine")
		return true
	})
}

// goUsesContext reports whether the spawned call references any
// context-typed expression in its arguments or literal body.
func goUsesContext(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && isContext(pass.TypesInfo.Types[e].Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
