// Package a is the spanend golden package.
package a

import (
	"context"
	"errors"
	"time"

	"repro/internal/obs"
)

// Positive: the span result is discarded — nobody can ever end it.
func discarded(ctx context.Context) {
	obs.StartChild(ctx, "phase") // want "span started and discarded"
	work()
}

// Positive: started, assigned, never ended.
func neverEnded(tr *obs.Tracer) {
	sp := tr.Start("load") // want "span is never ended in this function"
	work()
	_ = sp.Child // keep sp used without ending it
}

// Positive: the error return exits before End — only a defer covers
// every path.
func earlyReturn(tr *obs.Tracer, fail bool) error {
	sp := tr.StartUnder("compute") // want "span is not ended on every return path"
	if fail {
		return errors.New("bailed")
	}
	sp.End()
	return nil
}

// Positive: an RPC root span from the remote-span API leaks exactly
// like any other — the node would ship a frame whose root never closes.
func rpcNeverEnded(tr *obs.Tracer) {
	sp := tr.StartRPC("cluster.rpc") // want "span is never ended in this function"
	work()
	_ = sp.Child
}

// Positive: a context-carrying function spawning a context-free
// goroutine detaches it from the span tree.
func detached(ctx context.Context, done chan struct{}) {
	go func() { // want "goroutine spawned without the function's context"
		work()
		close(done)
	}()
}

// Positive, suppressed: the directive records why the span outlives the
// function.
func suppressedStart(tr *obs.Tracer) {
	//fftlint:ignore spanend golden suppression case: span deliberately left open for the process-exit snapshot
	sp := tr.Start("daemon")
	_ = sp.Child
}

// Negative: deferred End covers every return path.
func deferred(ctx context.Context, fail bool) error {
	sp := obs.StartChild(ctx, "phase").SetCat(obs.CatCompute)
	defer sp.End()
	if fail {
		return errors.New("bailed")
	}
	return nil
}

// Negative: the RPC root is ended under a defer, wire-bytes annotation
// chained on the starter and all.
func rpcDeferred(tr *obs.Tracer, fail bool) error {
	sp := tr.StartRPC("cluster.rpc").AddBytes(128, 4096)
	defer sp.End()
	if fail {
		return errors.New("bailed")
	}
	return nil
}

// Negative: straight-line End before the only return.
func straightLine(tr *obs.Tracer) {
	sp := tr.Start("once")
	work()
	sp.End()
}

// Negative: the span is returned — the caller owns the End now.
func beginPhase(tr *obs.Tracer, name string) *obs.Span {
	sp := tr.Start(name).SetCat(obs.CatNetsim)
	return sp
}

// Negative: a deferred closure ending the span counts as deferred.
func deferredClosure(tr *obs.Tracer) {
	sp := tr.Start("wrapped")
	defer func() {
		sp.End()
	}()
	work()
}

// Negative: the goroutine receives the context explicitly.
func attached(ctx context.Context, done chan struct{}) {
	go func(ctx context.Context) {
		<-ctx.Done()
		close(done)
	}(ctx)
}

func work() { time.Sleep(time.Microsecond) }
