package spanend_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/spanend"
)

func TestSpanend(t *testing.T) {
	analysistest.Run(t, spanend.Analyzer, "a")
}
