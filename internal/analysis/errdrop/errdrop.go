// Package errdrop flags discarded errors from the netsim and server
// APIs. Those errors are load-bearing: a dropped ExchangeCompute or
// Route error means a simulation silently produced garbage routing
// statistics, and a dropped pool error means a request vanished without
// a response. A call is "dropped" when its results are discarded
// entirely — used as a bare expression statement, or launched via go or
// defer. Explicitly assigning the error to _ is accepted as a visible,
// reviewable decision.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded errors from netsim and server APIs",
	Run:  run,
}

// targetSuffixes are the package-path suffixes whose APIs must not have
// errors dropped.
var targetSuffixes = []string{
	"internal/netsim",
	"internal/server",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(pass, call)
				}
			case *ast.GoStmt:
				report(pass, n.Call)
			case *ast.DeferStmt:
				report(pass, n.Call)
			}
			return true
		})
	}
	return nil
}

// report emits a diagnostic if call targets a netsim/server function
// whose last result is an error.
func report(pass *analysis.Pass, call *ast.CallExpr) {
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	target := false
	for _, suf := range targetSuffixes {
		if strings.HasSuffix(path, suf) {
			target = true
		}
	}
	if !target {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return
	}
	pass.Reportf(call.Pos(), "error returned by %s.%s is dropped; handle it or assign it to _ explicitly", fn.Pkg().Name(), fn.Name())
}

// callee resolves the called *types.Func, unwrapping parenthesised and
// generic-instantiated callees.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch fe := fun.(type) {
	case *ast.IndexExpr:
		fun = fe.X
	case *ast.IndexListExpr:
		fun = fe.X
	}
	switch fe := fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fe].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fe.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
