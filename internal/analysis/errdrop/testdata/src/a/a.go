// Package a is the errdrop golden package.
package a

import (
	"repro/internal/netsim"
	"repro/internal/permute"
)

func add(self, partner int, node int) int { return self + partner }

// Positive: bare expression statement drops the error.
func dropExpr(m *netsim.Mesh[int]) {
	m.ExchangeCompute(0, add) // want "error returned by netsim.ExchangeCompute is dropped"
}

// Positive: goroutine launch drops the error.
func dropGo(m *netsim.Mesh[int]) {
	go m.ExchangeCompute(0, add) // want "error returned by netsim.ExchangeCompute is dropped"
}

// Positive: defer drops the error.
func dropDefer(m *netsim.Mesh[int]) {
	defer m.ExchangeCompute(0, add) // want "error returned by netsim.ExchangeCompute is dropped"
}

// Positive: a multi-result constructor used as a statement drops both
// the handle and the error.
func dropCtor() {
	netsim.NewMesh[int](4, false, netsim.Config{}) // want "error returned by netsim.NewMesh is dropped"
}

// Negative: handled error.
func handled(m *netsim.Mesh[int]) error {
	if err := m.ExchangeCompute(0, add); err != nil {
		return err
	}
	return nil
}

// Negative: explicit blank assignment is a visible decision.
func blanked(m *netsim.Mesh[int], p permute.Permutation) {
	_, _ = m.Route(p)
}

// Negative: dropped errors from non-target packages are out of scope.
func localError() error { return nil }

func dropLocal() {
	localError()
}
