// Package a is the deadline golden package.
package a

import (
	"io"
	"net"
	"net/http"
	"time"
)

// Positive: net.Dial has no connect timeout.
func dialForever() (net.Conn, error) {
	return net.Dial("tcp", "127.0.0.1:1") // want "net.Dial has no connect timeout"
}

// Positive: the package-level helpers ride the timeout-less default
// client.
func fetch(url string) (*http.Response, error) {
	return http.Get(url) // want "http.Get uses http.DefaultClient"
}

// Positive: a client literal with no Timeout waits forever.
var lazyClient = &http.Client{} // want "http.Client literal without a Timeout"

// Positive: conn read in a function that never sets a deadline.
func readHeader(c net.Conn, hdr []byte) error {
	_, err := io.ReadFull(c, hdr) // want "io.ReadFull on a net.Conn in a function that never sets a conn deadline"
	return err
}

// Positive: direct conn write, same rule.
func send(c net.Conn, frame []byte) error {
	_, err := c.Write(frame) // want "net.Conn.Write in a function that never sets a conn deadline"
	return err
}

// Positive, suppressed: the caller set the deadline; the directive
// records that.
func sendPrebounded(c net.Conn, frame []byte) error {
	//fftlint:ignore deadline golden suppression case: caller sets the conn deadline before handing it over
	_, err := c.Write(frame)
	return err
}

// Negative: DialTimeout is bounded.
func dialBounded() (net.Conn, error) {
	return net.DialTimeout("tcp", "127.0.0.1:1", time.Second)
}

// Negative: a client with a Timeout.
var boundedClient = &http.Client{Timeout: 5 * time.Second}

// Negative: the function sets a deadline before its conn I/O.
func roundTrip(c net.Conn, frame, hdr []byte) error {
	if err := c.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	if _, err := c.Write(frame); err != nil {
		return err
	}
	_, err := io.ReadFull(c, hdr)
	return err
}

// Negative: a deadline set in the outer function covers closure I/O.
func withRetry(c net.Conn, frame []byte) error {
	_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	attempt := func() error {
		_, err := c.Write(frame)
		return err
	}
	if err := attempt(); err != nil {
		return attempt()
	}
	return nil
}

// Negative: io helpers on in-memory readers are not conn I/O.
func drain(r io.Reader) ([]byte, error) {
	return io.ReadAll(r)
}
