package deadline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/deadline"
)

func TestDeadline(t *testing.T) {
	analysistest.Run(t, deadline.Analyzer, "a")
}
