// Package deadline flags network operations that can block forever
// because nothing bounds them. The cluster's wire protocol and the
// registry's heartbeats are the motivating sites: a peer that stops
// mid-frame must cost a timeout, not a goroutine. It reports
//
//  1. net.Dial — no connect timeout; use net.DialTimeout or
//     (&net.Dialer{Timeout: ...}).DialContext;
//  2. the package-level http.Get / Head / Post / PostForm helpers —
//     they ride http.DefaultClient, which has no Timeout; build a
//     client with a Timeout or a request with NewRequestWithContext;
//  3. an http.Client composite literal that sets no Timeout field —
//     the zero value means "wait forever"; and
//  4. Read / Write / ReadFrom / WriteTo on a net.Conn (including
//     io.Copy / io.ReadAll / io.ReadFull handed a conn) inside a
//     function that never calls SetDeadline / SetReadDeadline /
//     SetWriteDeadline. A context deadline does NOT exempt the
//     function: cancelling a context never unblocks a conn read — only
//     a conn deadline does.
//
// Rule 4 is function-scoped: one Set*Deadline call anywhere in the
// function (including nested literals) blesses all its conn I/O, so
// the roundTripDeadline idiom — set once, then write + read — stays
// quiet. Functions that receive an already-bounded conn suppress with
// //fftlint:ignore deadline <reason> naming who set the deadline.
package deadline

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "deadline",
	Doc:  "flags unbounded network operations: dials, default-client HTTP, and conn I/O with no deadline",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Client literals are position-independent (package-level vars
		// included); the deadline-scoped conn rules are per-function.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				checkClientLit(pass, lit)
			}
			return true
		})
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDecl(pass, fd.Body)
		}
	}
	return nil
}

// checkDecl checks one top-level function declaration. Nested literals
// are checked as part of their declaration: a deadline set in the outer
// function covers I/O in a closure and vice versa.
func checkDecl(pass *analysis.Pass, body *ast.BlockStmt) {
	setsDeadline := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				setsDeadline = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			checkCall(pass, call, setsDeadline)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, setsDeadline bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	switch {
	case path == "net" && name == "Dial" && !isMethod:
		pass.Reportf(call.Pos(),
			"net.Dial has no connect timeout; use net.DialTimeout or (&net.Dialer{Timeout: ...}).DialContext")
		return
	case path == "net/http" && !isMethod &&
		(name == "Get" || name == "Head" || name == "Post" || name == "PostForm"):
		pass.Reportf(call.Pos(),
			"http.%s uses http.DefaultClient, which has no timeout; build an http.Client with Timeout or a request with NewRequestWithContext", name)
		return
	}

	if setsDeadline {
		return
	}
	switch name {
	case "Read", "Write", "ReadFrom", "WriteTo":
		if isMethod && isConnType(pass, pass.TypesInfo.Types[sel.X].Type) {
			pass.Reportf(call.Pos(),
				"net.Conn.%s in a function that never sets a conn deadline; a stalled peer blocks this goroutine forever — call SetDeadline (a context cannot unblock a conn read)", name)
		}
	case "Copy", "ReadAll", "ReadFull":
		if path == "io" && argIsConn(pass, call) {
			pass.Reportf(call.Pos(),
				"io.%s on a net.Conn in a function that never sets a conn deadline; a stalled peer blocks this goroutine forever — call SetDeadline first", name)
		}
	}
}

// checkClientLit flags http.Client{...} literals without a Timeout.
func checkClientLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "Client" || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return
	}
	for _, e := range lit.Elts {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Timeout" {
				return
			}
		}
	}
	pass.Reportf(lit.Pos(),
		"http.Client literal without a Timeout waits forever on a stalled server; set Timeout (or document why via per-request contexts)")
}

// argIsConn reports whether any argument of call is a net.Conn.
func argIsConn(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if isConnType(pass, pass.TypesInfo.Types[a].Type) {
			return true
		}
	}
	return false
}

// isConnType reports whether t is net.Conn or a concrete type that
// implements it.
func isConnType(pass *analysis.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	iface := netConnInterface(pass.Pkg)
	if iface == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// netConnInterface finds the net.Conn interface in the package's import
// graph, or nil when net is not reachable.
func netConnInterface(pkg *types.Package) *types.Interface {
	if pkg == nil {
		return nil
	}
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "net" {
			if obj, ok := p.Scope().Lookup("Conn").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg)
}
