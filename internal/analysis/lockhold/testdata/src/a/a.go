// Package a is the lockhold golden package.
package a

import (
	"io"
	"net"
	"os/exec"
	"sync"
	"time"
)

var mu sync.Mutex
var ch = make(chan int)

// Positive: channel receive while holding the mutex.
func recvUnderLock() int {
	mu.Lock()
	v := <-ch // want "channel receive while holding mu"
	mu.Unlock()
	return v
}

// Positive: deferred unlock keeps the lock held across the send.
func sendUnderDeferredLock() {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1 // want "channel send while holding mu"
}

// Positive: sleeping while locked.
func sleepUnderLock() {
	mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding mu"
	mu.Unlock()
}

// Positive: waiting on a WaitGroup while holding the mutex.
func waitGroupUnderLock(wg *sync.WaitGroup) {
	mu.Lock()
	defer mu.Unlock()
	wg.Wait() // want "sync.WaitGroup.Wait while holding mu"
}

// Positive: dialing while locked is network I/O under the lock.
func dialUnderLock() (net.Conn, error) {
	mu.Lock()
	defer mu.Unlock()
	return net.DialTimeout("tcp", "127.0.0.1:1", time.Second) // want "net call while holding mu"
}

// Positive: reading a net.Conn while locked blocks every other holder
// behind the peer.
func readConnUnderLock(c net.Conn, buf []byte) (int, error) {
	mu.Lock()
	defer mu.Unlock()
	return c.Read(buf) // want "net.Conn.Read while holding mu"
}

// Positive: a concrete conn type counts like the interface.
func writeTCPUnderLock(c *net.TCPConn, buf []byte) (int, error) {
	mu.Lock()
	defer mu.Unlock()
	return c.Write(buf) // want "net.Conn.Write while holding mu"
}

// Positive: io helpers on a conn are conn reads.
func readFullUnderLock(c net.Conn, buf []byte) (int, error) {
	mu.Lock()
	defer mu.Unlock()
	return io.ReadFull(c, buf) // want "io.ReadFull on a net.Conn while holding mu"
}

// Positive: waiting out a subprocess under the lock.
func execUnderLock() error {
	mu.Lock()
	defer mu.Unlock()
	return exec.Command("true").Run() // want "os/exec.Run while holding mu"
}

// Positive, suppressed: the directive with a reason silences the finding.
func suppressedSleep() {
	mu.Lock()
	defer mu.Unlock()
	//fftlint:ignore lockhold golden suppression case: the sleep is a test fixture's deliberate hold
	time.Sleep(time.Millisecond)
}

// Negative: Cond.Wait atomically releases its mutex — that is the
// condition-variable protocol, not a lock held across a block.
var cond = sync.NewCond(&mu)

func condWaitUnderLock(ready func() bool) {
	mu.Lock()
	defer mu.Unlock()
	for !ready() {
		cond.Wait()
	}
}

// Negative: the lock is released before blocking.
func unlockThenRecv() int {
	mu.Lock()
	x := 1
	mu.Unlock()
	return x + <-ch
}

// Negative: select with a default clause does not block.
func nonBlockingSelect() int {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// Negative: io helpers on in-memory readers are not conn I/O.
func readFullBuffer(r io.Reader, buf []byte) (int, error) {
	mu.Lock()
	defer mu.Unlock()
	return io.ReadFull(r, buf)
}

// Negative: conn I/O with no lock held.
func readConnUnlocked(c net.Conn, buf []byte) (int, error) {
	return io.ReadFull(c, buf)
}
