// Package lockhold flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held. A lock held across blocking I/O
// serialises every other request on that lock behind the slowest peer —
// the convoy the server's worker pool and the cluster's per-connection
// scratch exist to avoid. Blocking operations are
//
//   - channel sends, receives, and selects without a default clause;
//   - sync.WaitGroup.Wait and time.Sleep;
//   - calls into net, net/http and the other net/* packages;
//   - Read/Write/ReadFrom/WriteTo on a net.Conn (and io.Copy,
//     io.ReadAll, io.ReadFull when an argument is a net.Conn);
//   - os/exec process waits (Run, Wait, Output, CombinedOutput); and
//   - cluster RPCs — the repro/internal/cluster entry points that
//     dial, hedge and retry across the network (Transform, Ping,
//     ProbePing, ProbeStatus and their wire-level helpers); the
//     package's in-memory helpers (breaker state, pool bookkeeping)
//     are not blocking and do not count.
//
// sync.Cond.Wait is exempt: it atomically releases the mutex it was
// constructed with — that IS the condition-variable protocol.
//
// The analysis is a source-order heuristic within one function body,
// not a control-flow analysis: an Unlock on any path closes the window,
// deferred Unlocks leave it open until function end, and nested
// function literals are analysed independently. This check grew out of
// the ctxflow analyzer; it is its own analyzer so suppressions name the
// failure mode they waive.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "flags blocking operations (channels, I/O, sleeps, RPCs) while a sync mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkLockedBlocking(pass, body)
			return true
		})
	}
	return nil
}

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evBlocking
)

type event struct {
	pos  token.Pos
	kind eventKind
	key  string // lock identity: receiver expression + r/w class
	desc string // blocking-op description
}

func checkLockedBlocking(pass *analysis.Pass, body *ast.BlockStmt) {
	// Communication statements of select cases are modelled by the
	// select itself, not as standalone sends/receives.
	commStmts := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					commStmts[cc.Comm] = true
				}
			}
		}
		return true
	})

	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		if commStmts[n] {
			return false
		}
		switch n := n.(type) {
		case nil:
			return true
		case *ast.FuncLit:
			return false // analysed independently
		case *ast.DeferStmt:
			// A deferred Unlock holds the lock to function end (the
			// window stays open) and a deferred blocking call runs after
			// return, outside the window model: skip the whole subtree.
			return false
		case *ast.SendStmt:
			events = append(events, event{n.Pos(), evBlocking, "", "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, event{n.Pos(), evBlocking, "", "channel receive"})
			}
		case *ast.SelectStmt:
			blocking := true
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					blocking = false // has a default clause
				}
			}
			if blocking {
				events = append(events, event{n.Pos(), evBlocking, "", "select"})
			}
		case *ast.CallExpr:
			if ev, ok := lockEvent(pass, n); ok {
				events = append(events, ev)
			} else if desc := blockingCall(pass, n); desc != "" {
				events = append(events, event{n.Pos(), evBlocking, "", desc})
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	type held struct {
		key string
		pos token.Pos
	}
	var open []held // insertion-ordered so reports are deterministic
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			open = append(open, held{ev.key, ev.pos})
		case evUnlock:
			for i, h := range open {
				if h.key == ev.key {
					open = append(open[:i], open[i+1:]...)
					break
				}
			}
		case evBlocking:
			if len(open) > 0 {
				h := open[0]
				pass.Reportf(ev.pos, "%s while holding %s (locked at line %d); release the lock around blocking operations",
					ev.desc, displayKey(h.key), pass.Fset.Position(h.pos).Line)
			}
		}
	}
}

// displayKey strips the read/write class suffix from a lock key.
func displayKey(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[:i]
	}
	return key
}

// lockEvent classifies call as a Lock/Unlock on a sync mutex.
func lockEvent(pass *analysis.Pass, call *ast.CallExpr) (event, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return event{}, false
	}
	var kind eventKind
	var class string
	switch sel.Sel.Name {
	case "Lock":
		kind, class = evLock, "w"
	case "Unlock":
		kind, class = evUnlock, "w"
	case "RLock":
		kind, class = evLock, "r"
	case "RUnlock":
		kind, class = evUnlock, "r"
	default:
		return event{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return event{}, false
	}
	key := types.ExprString(sel.X)
	return event{call.Pos(), kind, key + "/" + class, key}, true
}

// blockingCall describes call if it is a known blocking operation.
// clusterRPC names the repro/internal/cluster functions that perform a
// network round trip (dial, hedge, retry). Everything else in that
// package — breaker state, ring lookups, pool bookkeeping — is
// in-memory and safe to call under a lock.
var clusterRPC = map[string]bool{
	"Transform":         true,
	"Ping":              true,
	"ProbePing":         true,
	"ProbeStatus":       true,
	"attempt":           true,
	"tryRound":          true,
	"roundTrip":         true,
	"roundTripDeadline": true,
	"dialPeer":          true,
}

func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	// Read/Write/ReadFrom/WriteTo on a net.Conn value: the receiver's
	// static type decides, so *net.TCPConn, the net.Conn interface and
	// wrappers from other packages (crypto/tls) all count while
	// bytes.Buffer.Read does not. Checked before the package-path rules
	// so conn I/O gets the specific message.
	switch name {
	case "Read", "Write", "ReadFrom", "WriteTo":
		if isConnType(pass, pass.TypesInfo.Types[sel.X].Type) {
			return "net.Conn." + name
		}
	}
	switch {
	case path == "sync" && name == "Wait" && recvNamed(fn) == "WaitGroup":
		// sync.Cond.Wait is exempt: it atomically releases the mutex it
		// was constructed with — that IS the condition-variable protocol.
		return "sync.WaitGroup.Wait"
	case path == "time" && name == "Sleep":
		return "time.Sleep"
	case path == "net" || path == "net/http" || strings.HasPrefix(path, "net/"):
		return path + " call"
	case path == "os/exec" && (name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
		return "os/exec." + name
	case path == "repro/internal/cluster" && clusterRPC[name]:
		return "cluster RPC (" + name + ")"
	case path == "io" && (name == "Copy" || name == "ReadAll" || name == "ReadFull"):
		if argIsConn(pass, call) {
			return "io." + name + " on a net.Conn"
		}
		return ""
	}
	return ""
}

// argIsConn reports whether any argument of call is a net.Conn.
func argIsConn(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if isConnType(pass, pass.TypesInfo.Types[a].Type) {
			return true
		}
	}
	return false
}

// isConnType reports whether t is net.Conn or a concrete type that
// implements it (so pooled wrappers struct-embedding a conn count too).
func isConnType(pass *analysis.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	iface := netConnInterface(pass.Pkg)
	if iface == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// netConnInterface finds the net.Conn interface in the package's import
// graph, or nil when net is not imported (then no value can have the
// type anyway).
func netConnInterface(pkg *types.Package) *types.Interface {
	if pkg == nil {
		return nil
	}
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "net" {
			if obj, ok := p.Scope().Lookup("Conn").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg)
}

// recvNamed returns the name of fn's receiver's named type ("" for
// plain functions).
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
