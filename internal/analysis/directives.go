package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// fftlint recognises two comment directives, documented in
// docs/LINTING.md:
//
//	//fftlint:hot
//	    File-level marker: the enclosing package is a hot path and the
//	    hotalloc analyzer applies to it.
//
//	//fftlint:ignore <analyzer> <reason>
//	    Suppresses findings of the named analyzer (or "all") reported on
//	    the same line or the line directly below the comment. The reason
//	    is mandatory: a directive without one does not suppress.

const (
	hotDirective    = "//fftlint:hot"
	ignoreDirective = "//fftlint:ignore"
)

// hasHotDirective reports whether any comment in files is the hot marker.
func hasHotDirective(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if text == hotDirective || strings.HasPrefix(text, hotDirective+" ") {
					return true
				}
			}
		}
	}
	return false
}

// An ignore is one parsed //fftlint:ignore directive.
type ignore struct {
	analyzer string // analyzer name or "all"
	line     int    // line the directive appears on
}

// ignoresByFile collects well-formed ignore directives, keyed by filename.
func ignoresByFile(fset *token.FileSet, files []*ast.File) map[string][]ignore {
	out := make(map[string][]ignore)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
				if len(fields) < 2 {
					continue // no reason given: directive is inert
				}
				pos := fset.Position(c.Pos())
				out[pos.Filename] = append(out[pos.Filename], ignore{
					analyzer: fields[0],
					line:     pos.Line,
				})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by an ignore directive on the
// same line or the line above it.
func suppressed(d Diagnostic, ignores map[string][]ignore) bool {
	for _, ig := range ignores[d.Pos.Filename] {
		if ig.analyzer != d.Analyzer && ig.analyzer != "all" {
			continue
		}
		if ig.line == d.Pos.Line || ig.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}
