// Package hotalloc flags per-iteration allocations inside loops of
// packages marked hot with the //fftlint:hot file directive (the FFT
// kernels, the parallel drivers and the plan cache). It reports
//
//   - make(...) inside a loop — per-iteration slice/map/channel
//     allocation that should be hoisted or replaced by a reused buffer;
//   - append inside a loop growing a slice that was declared without
//     capacity (var s []T, s := []T{} or s := T(nil)) — each growth
//     reallocates and copies; pre-size with make(len/cap); and
//   - closures created per iteration that escape: function literals
//     launched with go, deferred, or stored into a variable, field,
//     slice or channel. A literal passed directly as a call argument is
//     not flagged — those callbacks typically do not escape the call.
//
// The directive marks whole packages because hot-path status is an
// architectural fact, not a per-line one; cold setup code inside a hot
// package suppresses individual findings with
// //fftlint:ignore hotalloc <reason>. Test files are exempt: benchmark
// and test loops allocate freely without sitting on the serving path.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags per-iteration allocations in loops of //fftlint:hot packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.Hot {
		return nil
	}
	var files []*ast.File
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(name, "_test.go") {
			files = append(files, f)
		}
	}
	uncapped := uncappedSlices(pass)
	analysis.WithStack(files, func(n ast.Node, stack []ast.Node) bool {
		if !inLoop(stack) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch builtinName(pass, n) {
			case "make":
				pass.Reportf(n.Pos(), "make inside a loop in a hot-path package; hoist the allocation or reuse a buffer")
			case "append":
				if len(n.Args) > 0 {
					if id, ok := n.Args[0].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil && uncapped[obj] {
							pass.Reportf(n.Pos(), "append grows %s inside a hot loop but it was declared without capacity; pre-size it with make", id.Name)
						}
					}
				}
			}
		case *ast.FuncLit:
			if kind := escapingLit(n, stack); kind != "" {
				pass.Reportf(n.Pos(), "closure %s per loop iteration in a hot-path package; hoist it out of the loop", kind)
			}
		}
		return true
	})
	return nil
}

// inLoop reports whether the innermost function boundary in stack is
// inside a for or range statement: allocations in a nested function
// literal belong to that literal's own loops, not the enclosing ones.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// escapingLit classifies how a loop-local function literal escapes, or
// returns "" for non-escaping uses (direct call argument, immediate
// invocation).
func escapingLit(lit *ast.FuncLit, stack []ast.Node) string {
	if len(stack) < 2 {
		return ""
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.CallExpr:
		if parent.Fun == lit {
			// immediately invoked: the closure may still be allocated,
			// but go/defer classification happens one level up
			if len(stack) >= 3 {
				switch stack[len(stack)-3].(type) {
				case *ast.GoStmt:
					return "launched as a goroutine"
				case *ast.DeferStmt:
					return "deferred"
				}
			}
			return ""
		}
		return "" // callback argument: assumed non-escaping
	case *ast.AssignStmt, *ast.ValueSpec, *ast.CompositeLit, *ast.SendStmt, *ast.ReturnStmt, *ast.KeyValueExpr:
		return "stored"
	}
	return ""
}

// uncappedSlices collects local slice variables declared with no backing
// capacity: `var s []T`, `s := []T{}` and `s := []T(nil)`.
func uncappedSlices(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(id *ast.Ident, value ast.Expr) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		switch v := value.(type) {
		case nil:
			out[obj] = true // var s []T
		case *ast.CompositeLit:
			if len(v.Elts) == 0 {
				out[obj] = true // s := []T{}
			}
		case *ast.CallExpr: // conversion []T(nil)
			if len(v.Args) == 1 {
				if lit, ok := v.Args[0].(*ast.Ident); ok && lit.Name == "nil" {
					out[obj] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, id := range n.Names {
					var v ast.Expr
					if i < len(n.Values) {
						v = n.Values[i]
					}
					record(id, v)
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							record(id, n.Rhs[i])
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// builtinName returns the builtin a call invokes ("make", "append"), or "".
func builtinName(pass *analysis.Pass, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}
