// Package b is not marked //fftlint:hot: hotalloc must stay silent even
// on allocation-heavy loops.
package b

func makeInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]int, n)
		buf[0] = i
		total += buf[0]
	}
	return total
}
