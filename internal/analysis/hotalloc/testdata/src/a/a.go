// Package a is the hotalloc golden package; the directive below marks
// it hot.
//
//fftlint:hot
package a

// Positive: per-iteration make.
func makeInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]int, n) // want "make inside a loop in a hot-path package"
		buf[0] = i
		total += buf[0]
	}
	return total
}

// Positive: append growing an uncapped slice in a loop.
func appendUncapped(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "append grows out inside a hot loop"
	}
	return out
}

// Positive: goroutine launched per iteration.
func goPerIteration(n int, done chan int) {
	for i := 0; i < n; i++ {
		go func() { // want "closure launched as a goroutine per loop iteration"
			done <- 1
		}()
	}
}

// Positive: closure stored per iteration.
func storedClosure(n int) []func() int {
	fns := make([]func() int, n)
	for i := range fns {
		i := i
		fns[i] = func() int { return i } // want "closure stored per loop iteration"
	}
	return fns
}

// Negative: allocation hoisted out of the loop and reused.
func hoisted(n int) int {
	buf := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		buf[0] = i
		total += buf[0]
	}
	return total
}

// Negative: append into a pre-sized slice.
func appendPreSized(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Negative: callback passed directly to a call does not escape.
func callbackArg(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		apply(func(v int) { total += v }, i)
	}
	return total
}

func apply(f func(int), v int) { f(v) }

// Negative: a justified per-iteration allocation can be suppressed.
func suppressed(n int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		//fftlint:ignore hotalloc golden test of the suppression directive
		rows[i] = make([]int, n)
	}
	return rows
}
