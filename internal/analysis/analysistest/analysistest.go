// Package analysistest runs an analyzer over a golden testdata package
// and checks its diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (rebuilt on the
// standard library because this environment has no module cache).
//
// Layout: the analyzer package keeps golden sources under
// testdata/src/<pkg>/. Each line expecting diagnostics carries a
// trailing comment `// want "re"` (several quoted regexps for several
// diagnostics). Lines without a want comment must stay clean, and
// //fftlint:ignore directives in the golden source are honoured, so
// suppression behaviour is testable.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads testdata/src/<pkg> (relative to the calling test's package
// directory) and checks analyzer a against its want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := analysis.SharedLoader(".")
	if err != nil {
		t.Fatalf("analysistest: building loader: %v", err)
	}
	unit, err := loader.Dir(dir, pkg)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	for _, e := range unit.Errs {
		// Golden packages must type-check cleanly: a broken fixture
		// silently weakens every assertion below.
		t.Errorf("analysistest: %s: %v", pkg, e)
	}
	diags, err := analysis.Run([]*analysis.Unit{unit}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	wants := collectWants(t, unit)

	type key struct {
		file string
		line int
	}
	unmatched := make(map[key][]analysis.Diagnostic)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		unmatched[k] = append(unmatched[k], d)
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		ds := unmatched[k]
		found := -1
		for i, d := range ds {
			if w.re.MatchString(d.Message) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
			continue
		}
		unmatched[k] = append(ds[:found], ds[found+1:]...)
	}
	for _, ds := range unmatched {
		for _, d := range ds {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, unit *analysis.Unit) []want {
	t.Helper()
	var wants []want
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				for _, q := range splitQuoted(text[len("want "):]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, want{pos.Filename, pos.Line, re})
				}
			}
		}
	}
	return wants
}

// splitQuoted returns the double-quoted Go string literals in s,
// honouring backslash escapes. An unterminated literal is dropped.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		s = s[i:]
		end := -1
		for j := 1; j < len(s); j++ {
			if s[j] == '\\' {
				j++
				continue
			}
			if s[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}
