// Package escape turns the Go compiler's escape-analysis diagnostics
// (`go build -gcflags=-m`) into a versioned allocation budget for the
// repository's hot-path packages — the ones marked //fftlint:hot.
//
// The hotalloc analyzer flags what the AST shows (make/append/new in a
// loop); this package gates what the compiler *proves*: every value it
// moves to the heap in a hot package is attributed to its enclosing
// function and counted against the committed ALLOC_<seq>.json baseline.
// A change that makes a previously stack-allocated value escape inside
// internal/fft's butterfly loops fails `make alloc-compare` even though
// no test broke and no benchmark was run.
//
// Escape diagnostics are a compiler implementation detail, not a stable
// API: a new Go minor version may legitimately move values either way.
// Reports therefore record the toolchain version, and Compare refuses
// to diff across minor versions — loudly, with instructions to
// re-baseline — instead of reporting phantom regressions.
package escape

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the ALLOC_<seq>.json layout.
const SchemaVersion = 1

// Kind classifies one diagnostic.
type Kind string

const (
	// KindEscape is "<expr> escapes to heap": the value itself is
	// heap-allocated.
	KindEscape Kind = "escapes"
	// KindMoved is "moved to heap: <var>": a local variable was
	// relocated because a reference outlives the frame.
	KindMoved Kind = "moved"
)

// Site is one heap escape the compiler reported.
type Site struct {
	File string `json:"file"` // module-relative path
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Kind Kind   `json:"kind"`
	What string `json:"what"` // the expression or variable that escapes
}

// FuncEscapes aggregates one function's heap escapes. Func is
// receiver-qualified ("(*Plan).Forward"); sites inside function
// literals count against the enclosing declaration.
type FuncEscapes struct {
	Func  string `json:"func"`
	Count int    `json:"count"`
	Sites []Site `json:"sites"`
}

// PackageEscapes is one hot package's budget entry.
type PackageEscapes struct {
	Path  string        `json:"path"`
	Total int           `json:"total"`
	Funcs []FuncEscapes `json:"funcs"`
}

// Report is the ALLOC_<seq>.json artifact.
type Report struct {
	SchemaVersion int              `json:"schema_version"`
	Seq           int              `json:"seq"`
	CreatedAt     string           `json:"created_at,omitempty"`
	GoVersion     string           `json:"go_version"`
	Total         int              `json:"total"`
	Packages      []PackageEscapes `json:"packages"`
}

// Diag is one parsed compiler diagnostic.
type Diag struct {
	Pkg  string // import path from the preceding "# path" header
	File string // as printed: module-relative when built from the root
	Line int
	Col  int
	Kind Kind
	What string
}

// diagRE matches `file.go:line:col: message`. The compiler prints
// columns for every escape diagnostic; anything else is not ours.
var diagRE = regexp.MustCompile(`^(\S+\.go):(\d+):(\d+): (.+)$`)

// ParseM extracts heap-escape diagnostics from `go build -gcflags=-m`
// output. Package clauses (`# import/path`) set the package attributed
// to subsequent lines; inlining notes, "does not escape" and
// "leaking param" lines are dropped — only "escapes to heap" and
// "moved to heap" count against the budget.
func ParseM(output string) []Diag {
	var out []Diag
	pkg := ""
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := diagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		var kind Kind
		var what string
		switch {
		case strings.HasPrefix(msg, "moved to heap: "):
			kind, what = KindMoved, strings.TrimPrefix(msg, "moved to heap: ")
		case strings.HasSuffix(msg, " escapes to heap"):
			kind, what = KindEscape, strings.TrimSuffix(msg, " escapes to heap")
		default:
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, Diag{Pkg: pkg, File: m[1], Line: ln, Col: col, Kind: kind, What: what})
	}
	return out
}

// MinorVersion reduces a runtime-style version ("go1.24.0", "go1.24")
// to its minor series ("go1.24"). Devel builds and anything else
// unparseable are returned as-is, which makes any comparison against a
// release version fail closed.
func MinorVersion(v string) string {
	rest, ok := strings.CutPrefix(v, "go")
	if !ok {
		return v
	}
	parts := strings.SplitN(rest, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return "go" + parts[0] + "." + parts[1]
}

// VersionSkewError is returned by Compare when baseline and current
// reports come from different Go minor versions. Escape analysis
// changes between minors; diffing across them reports compiler drift
// as if it were a code regression, so the comparison refuses to run.
type VersionSkewError struct {
	Baseline, Current string
}

func (e *VersionSkewError) Error() string {
	return fmt.Sprintf(
		"alloc budget baseline was recorded with %s but this toolchain is %s; "+
			"escape analysis is not stable across Go minor versions — "+
			"re-record the baseline on this toolchain (make alloc-baseline) and commit the new ALLOC_<seq>.json",
		e.Baseline, e.Current)
}

// Delta is one function whose heap-escape count changed.
type Delta struct {
	Pkg      string
	Func     string
	Baseline int
	Current  int
	Sites    []Site // current sites, for regression diagnostics
}

// Comparison is the outcome of diffing current escapes against a
// committed baseline.
type Comparison struct {
	Regressions  []Delta // current > baseline: fail the gate
	Improvements []Delta // current < baseline: worth re-baselining
}

// Compare diffs current against baseline per (package, function). A
// function absent from the baseline has budget zero — new hot code
// starts allocation-clean or declares its escapes by re-baselining.
func Compare(baseline, current *Report) (*Comparison, error) {
	if baseline.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("baseline schema version %d, this tool speaks %d", baseline.SchemaVersion, SchemaVersion)
	}
	if b, c := MinorVersion(baseline.GoVersion), MinorVersion(current.GoVersion); b != c {
		return nil, &VersionSkewError{Baseline: baseline.GoVersion, Current: current.GoVersion}
	}
	type key struct{ pkg, fn string }
	base := make(map[key]int)
	for _, p := range baseline.Packages {
		for _, f := range p.Funcs {
			base[key{p.Path, f.Func}] = f.Count
		}
	}
	var cmp Comparison
	seen := make(map[key]bool)
	for _, p := range current.Packages {
		for _, f := range p.Funcs {
			k := key{p.Path, f.Func}
			seen[k] = true
			switch b := base[k]; {
			case f.Count > b:
				cmp.Regressions = append(cmp.Regressions, Delta{Pkg: p.Path, Func: f.Func, Baseline: b, Current: f.Count, Sites: f.Sites})
			case f.Count < b:
				cmp.Improvements = append(cmp.Improvements, Delta{Pkg: p.Path, Func: f.Func, Baseline: b, Current: f.Count})
			}
		}
	}
	for _, p := range baseline.Packages {
		for _, f := range p.Funcs {
			k := key{p.Path, f.Func}
			if !seen[k] && f.Count > 0 {
				cmp.Improvements = append(cmp.Improvements, Delta{Pkg: p.Path, Func: f.Func, Baseline: f.Count, Current: 0})
			}
		}
	}
	sortDeltas(cmp.Regressions)
	sortDeltas(cmp.Improvements)
	return &cmp, nil
}

func sortDeltas(ds []Delta) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Pkg != ds[j].Pkg {
			return ds[i].Pkg < ds[j].Pkg
		}
		return ds[i].Func < ds[j].Func
	})
}
