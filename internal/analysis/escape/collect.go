package escape

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// hotDirective mirrors internal/analysis: a file-level //fftlint:hot
// comment marks the whole package as a hot path.
const hotDirective = "//fftlint:hot"

// HotPackages walks the module below root and returns the directories
// (module-relative, sorted) of packages carrying the hot directive.
// testdata trees and _test.go files are excluded: the budget covers
// shipped code only.
func HotPackages(root string) ([]string, error) {
	dirs := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(src), "\n") {
			line = strings.TrimSpace(line)
			if line == hotDirective || strings.HasPrefix(line, hotDirective+" ") {
				rel, err := filepath.Rel(root, filepath.Dir(path))
				if err != nil {
					return err
				}
				dirs[filepath.ToSlash(rel)] = true
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(dirs))
	for d := range dirs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}

// BuildDiagnostics compiles the given package dirs (module-relative)
// with -gcflags=-m and returns the raw diagnostic stream. The compiler
// replays diagnostics from the build cache, so repeat runs are cheap
// and deterministic for an unchanged tree.
func BuildDiagnostics(root string, dirs []string) (string, error) {
	if len(dirs) == 0 {
		return "", nil
	}
	args := []string{"build", "-gcflags=-m"}
	for _, d := range dirs {
		args = append(args, "./"+d)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out), nil
}

// Collect builds the module's hot packages with escape diagnostics on
// and returns the attributed budget report for this toolchain.
func Collect(root string) (*Report, error) {
	dirs, err := HotPackages(root)
	if err != nil {
		return nil, err
	}
	raw, err := BuildDiagnostics(root, dirs)
	if err != nil {
		return nil, err
	}
	diags := ParseM(raw)
	return Attribute(root, dirs, diags)
}

// funcSpan is one declaration's line range within a file.
type funcSpan struct {
	name     string
	from, to int
}

// Attribute maps each heap-escape diagnostic to its enclosing function
// declaration and aggregates per package. Diagnostics in files outside
// the hot dirs (dependencies the build touched) are dropped; sites
// outside any declaration (package-level initialisers) are charged to
// "(package init)".
func Attribute(root string, dirs []string, diags []Diag) (*Report, error) {
	spans := make(map[string][]funcSpan) // module-relative file -> decls
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", dir, err)
		}
		for _, pkg := range pkgs {
			for filename, file := range pkg.Files {
				rel, err := filepath.Rel(root, filename)
				if err != nil {
					return nil, err
				}
				key := filepath.ToSlash(rel)
				for _, d := range file.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					spans[key] = append(spans[key], funcSpan{
						name: declName(fd),
						from: fset.Position(fd.Pos()).Line,
						to:   fset.Position(fd.End()).Line,
					})
				}
			}
		}
	}

	type key struct{ pkg, fn string }
	grouped := make(map[key][]Site)
	for _, d := range diags {
		file := filepath.ToSlash(d.File)
		decls, ok := spans[file]
		if !ok {
			continue // not a hot-package source file
		}
		fn := "(package init)"
		for _, s := range decls {
			if d.Line >= s.from && d.Line <= s.to {
				fn = s.name
				break
			}
		}
		k := key{pkg: d.Pkg, fn: fn}
		grouped[k] = append(grouped[k], Site{File: file, Line: d.Line, Col: d.Col, Kind: d.Kind, What: d.What})
	}

	byPkg := make(map[string][]FuncEscapes)
	for k, sites := range grouped {
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].File != sites[j].File {
				return sites[i].File < sites[j].File
			}
			if sites[i].Line != sites[j].Line {
				return sites[i].Line < sites[j].Line
			}
			return sites[i].Col < sites[j].Col
		})
		byPkg[k.pkg] = append(byPkg[k.pkg], FuncEscapes{Func: k.fn, Count: len(sites), Sites: sites})
	}

	rep := &Report{SchemaVersion: SchemaVersion, GoVersion: runtime.Version()}
	pkgPaths := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgPaths = append(pkgPaths, p)
	}
	sort.Strings(pkgPaths)
	for _, p := range pkgPaths {
		funcs := byPkg[p]
		sort.Slice(funcs, func(i, j int) bool { return funcs[i].Func < funcs[j].Func })
		total := 0
		for _, f := range funcs {
			total += f.Count
		}
		rep.Packages = append(rep.Packages, PackageEscapes{Path: p, Total: total, Funcs: funcs})
		rep.Total += total
	}
	return rep, nil
}

// declName renders a receiver-qualified function name the way the
// budget file shows it: Forward becomes (*Plan).Forward when declared
// on *Plan.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := typeName(fd.Recv.List[0].Type)
	return "(" + recv + ")." + fd.Name.Name
}

func typeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + typeName(e.X)
	case *ast.IndexExpr:
		return typeName(e.X)
	case *ast.IndexListExpr:
		return typeName(e.X)
	default:
		return "?"
	}
}
