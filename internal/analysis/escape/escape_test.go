package escape

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestParseMSample pins the parser against a captured -gcflags=-m
// stream: exactly the "escapes to heap" and "moved to heap" lines
// survive, attributed to the package of the preceding '#' header, and
// every other diagnostic flavour (inlining notes, "does not escape",
// "leaking param", free-form noise) is dropped.
func TestParseMSample(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "gcflags_m_sample.txt"))
	if err != nil {
		t.Fatal(err)
	}
	got := ParseM(string(data))
	want := []Diag{
		{Pkg: "repro/internal/plancache", File: "internal/plancache/plancache.go", Line: 95, Col: 12, Kind: KindEscape, What: "&Cache{...}"},
		{Pkg: "repro/internal/plancache", File: "internal/plancache/plancache.go", Line: 101, Col: 23, Kind: KindEscape, What: "make([]shard, nshards)"},
		{Pkg: "repro/internal/fft", File: "internal/fft/fft.go", Line: 43, Col: 66, Kind: KindEscape, What: "n"},
		{Pkg: "repro/internal/fft", File: "internal/fft/fft.go", Line: 45, Col: 7, Kind: KindEscape, What: "&Plan{...}"},
		{Pkg: "repro/internal/fft", File: "internal/fft/fft.go", Line: 46, Col: 13, Kind: KindEscape, What: "make([]complex128, n / 2)"},
		{Pkg: "repro/internal/fft", File: "internal/fft/fft.go", Line: 104, Col: 20, Kind: KindEscape, What: `fmt.Sprintf("fft: stage %d out of range [0,%d)", ... argument...)`},
		{Pkg: "repro/internal/fft", File: "internal/fft/parallel.go", Line: 61, Col: 2, Kind: KindMoved, What: "wg"},
		{Pkg: "repro/internal/fft", File: "internal/fft/parallel.go", Line: 63, Col: 10, Kind: KindEscape, What: "func literal"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseM mismatch:\n got: %+v\nwant: %+v", got, want)
	}
}

func TestMinorVersion(t *testing.T) {
	cases := map[string]string{
		"go1.24.0":            "go1.24",
		"go1.24.5":            "go1.24",
		"go1.23":              "go1.23",
		"go1.23.11":           "go1.23",
		"devel go1.25-abcdef": "devel go1.25-abcdef",
		"not-a-version":       "not-a-version",
		"go1":                 "go1",
		"go1.22rc1":           "go1.22rc1", // rc suffix rides along in the minor: still distinct from go1.22
	}
	for in, want := range cases {
		if got := MinorVersion(in); got != want {
			t.Errorf("MinorVersion(%q) = %q, want %q", in, got, want)
		}
	}
}

func mkReport(goVersion string, counts map[[2]string]int) *Report {
	byPkg := make(map[string][]FuncEscapes)
	for k, n := range counts {
		byPkg[k[0]] = append(byPkg[k[0]], FuncEscapes{Func: k[1], Count: n})
	}
	r := &Report{SchemaVersion: SchemaVersion, GoVersion: goVersion}
	for p, fns := range byPkg {
		total := 0
		for _, f := range fns {
			total += f.Count
		}
		r.Packages = append(r.Packages, PackageEscapes{Path: p, Total: total, Funcs: fns})
		r.Total += total
	}
	return r
}

func TestCompareGates(t *testing.T) {
	base := mkReport("go1.24.0", map[[2]string]int{
		{"p", "Stable"}:  3,
		{"p", "Shrinks"}: 5,
		{"p", "Gone"}:    2,
	})
	cur := mkReport("go1.24.1", map[[2]string]int{
		{"p", "Stable"}:  3,
		{"p", "Shrinks"}: 1,
		{"p", "Grew"}:    4, // absent from baseline: budget is zero
	})
	cmp, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions) != 1 || cmp.Regressions[0].Func != "Grew" ||
		cmp.Regressions[0].Baseline != 0 || cmp.Regressions[0].Current != 4 {
		t.Fatalf("regressions = %+v, want only Grew 0->4", cmp.Regressions)
	}
	wantImproved := map[string]bool{"Shrinks": true, "Gone": true}
	if len(cmp.Improvements) != 2 || !wantImproved[cmp.Improvements[0].Func] || !wantImproved[cmp.Improvements[1].Func] {
		t.Fatalf("improvements = %+v, want Shrinks and Gone", cmp.Improvements)
	}
}

// TestCompareRefusesVersionSkew pins the drift policy: a baseline from
// another Go minor is a hard, typed error — never a silent diff.
func TestCompareRefusesVersionSkew(t *testing.T) {
	base := mkReport("go1.23.4", map[[2]string]int{{"p", "F"}: 1})
	cur := mkReport("go1.24.0", map[[2]string]int{{"p", "F"}: 1})
	_, err := Compare(base, cur)
	skew, ok := err.(*VersionSkewError)
	if !ok {
		t.Fatalf("err = %v, want *VersionSkewError", err)
	}
	for _, must := range []string{"go1.23.4", "go1.24.0", "re-record", "alloc-baseline"} {
		if !strings.Contains(skew.Error(), must) {
			t.Fatalf("skew message %q does not mention %q", skew.Error(), must)
		}
	}
}

// TestLiveCompilerFormat runs the real toolchain over one hot package
// and fails loudly if the -gcflags=-m diagnostic format has drifted to
// something ParseM no longer recognises — the canary for a Go upgrade
// changing the stream this whole subsystem is built on.
func TestLiveCompilerFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping compiler invocation")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := BuildDiagnostics(root, []string{"internal/fft"})
	if err != nil {
		t.Fatal(err)
	}
	diags := ParseM(raw)
	if len(diags) == 0 {
		t.Fatalf("%s emitted no parseable heap-escape diagnostics for internal/fft; "+
			"the -gcflags=-m format has drifted — update escape.ParseM and re-baseline ALLOC_<seq>.json",
			runtime.Version())
	}
	for _, d := range diags {
		if d.Pkg != "repro/internal/fft" {
			t.Fatalf("diag attributed to %q, want repro/internal/fft: %+v", d.Pkg, d)
		}
		if !strings.HasPrefix(d.File, "internal/fft/") {
			t.Fatalf("diag file %q not under internal/fft; path format drifted", d.File)
		}
	}

	// Attribution end-to-end: every site lands in a named declaration
	// (or package init), and per-function counts stay consistent.
	rep, err := Attribute(root, []string{"internal/fft"}, diags)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 || len(rep.Packages) != 1 {
		t.Fatalf("report = %+v, want one package with escapes", rep)
	}
	for _, p := range rep.Packages {
		sum := 0
		for _, f := range p.Funcs {
			if f.Func == "" {
				t.Fatalf("unnamed function in report: %+v", f)
			}
			if f.Count != len(f.Sites) {
				t.Fatalf("%s count %d != %d sites", f.Func, f.Count, len(f.Sites))
			}
			sum += f.Count
		}
		if sum != p.Total {
			t.Fatalf("%s total %d != sum %d", p.Path, p.Total, sum)
		}
	}
}

// TestHotPackagesFindsMarkedDirs pins hot-package discovery against the
// real tree: the five marked packages, testdata excluded.
func TestHotPackagesFindsMarkedDirs(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := HotPackages(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"internal/bench", "internal/cluster/wire", "internal/fft", "internal/parfft", "internal/plancache"}
	if !reflect.DeepEqual(dirs, want) {
		t.Fatalf("HotPackages = %v, want %v", dirs, want)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Fatalf("testdata dir leaked into hot set: %s", d)
		}
	}
}
