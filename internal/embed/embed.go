// Package embed evaluates graph embeddings into the repository's host
// topologies: a mapping of guest-graph nodes onto host nodes, judged by
// dilation (the worst stretch of any guest edge measured in host
// data-transfer steps). The paper's §II notes the hypermesh "can realize
// useful permutations and embed other useful graphs"; this package makes
// such claims checkable — e.g. every guest graph embeds into a 2D
// hypermesh with dilation at most 2 (its diameter), while hypercube
// embeddings need Gray-code constructions for dilation 1.
package embed

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/topology"
)

// Edge is one guest-graph edge between guest node indices.
type Edge [2]int

// Validate checks that mapping is an injective assignment of guest
// nodes to host nodes in [0, hostNodes).
func Validate(mapping []int, hostNodes int) error {
	seen := make(map[int]bool, len(mapping))
	for g, h := range mapping {
		if h < 0 || h >= hostNodes {
			return fmt.Errorf("embed: guest %d maps to host %d out of range [0,%d)", g, h, hostNodes)
		}
		if seen[h] {
			return fmt.Errorf("embed: host node %d used twice", h)
		}
		seen[h] = true
	}
	return nil
}

// Dilation returns the maximum host distance across all guest edges,
// and the average as a second value. It panics on invalid edges.
func Dilation(host topology.Topology, mapping []int, edges []Edge) (max int, avg float64) {
	if len(edges) == 0 {
		return 0, 0
	}
	total := 0
	for _, e := range edges {
		if e[0] < 0 || e[0] >= len(mapping) || e[1] < 0 || e[1] >= len(mapping) {
			panic(fmt.Sprintf("embed: edge %v out of guest range", e))
		}
		d := host.Distance(mapping[e[0]], mapping[e[1]])
		total += d
		if d > max {
			max = d
		}
	}
	return max, float64(total) / float64(len(edges))
}

// RingEdges returns the n edges of an n-node ring.
func RingEdges(n int) []Edge {
	if n < 2 {
		return nil
	}
	out := make([]Edge, n)
	for i := 0; i < n; i++ {
		out[i] = Edge{i, (i + 1) % n}
	}
	return out
}

// Grid2DEdges returns the edges of an r x c grid (no wraparound),
// row-major guest indexing.
func Grid2DEdges(r, c int) []Edge {
	var out []Edge
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				out = append(out, Edge{i*c + j, i*c + j + 1})
			}
			if i+1 < r {
				out = append(out, Edge{i*c + j, (i+1)*c + j})
			}
		}
	}
	return out
}

// HypercubeEdges returns the edges of a k-dimensional hypercube guest.
func HypercubeEdges(k int) []Edge {
	n := 1 << uint(k)
	var out []Edge
	for a := 0; a < n; a++ {
		for d := 0; d < k; d++ {
			b := bits.FlipBit(a, d)
			if b > a {
				out = append(out, Edge{a, b})
			}
		}
	}
	return out
}

// ButterflyStageEdges returns the pairing edges of FFT stage `bit` on n
// elements — the guest graph whose embedding cost is the per-stage
// mesh distance of Table 2A.
func ButterflyStageEdges(n, bit int) []Edge {
	var out []Edge
	for a := 0; a < n; a++ {
		b := bits.FlipBit(a, bit)
		if b > a {
			out = append(out, Edge{a, b})
		}
	}
	return out
}

// Identity returns the identity mapping on n nodes.
func Identity(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// GrayRingIntoHypercube maps a 2^k-node ring onto a k-dimensional
// hypercube with dilation 1 via the binary-reflected Gray code.
func GrayRingIntoHypercube(k int) []int {
	n := 1 << uint(k)
	m := make([]int, n)
	for i := range m {
		m[i] = bits.GrayCode(i)
	}
	return m
}

// GrayGridIntoHypercube maps a 2^rBits x 2^cBits grid onto a hypercube
// of rBits+cBits dimensions with dilation 1: each coordinate is Gray-
// coded independently, rows in the high bits.
func GrayGridIntoHypercube(rBits, cBits int) []int {
	rows, cols := 1<<uint(rBits), 1<<uint(cBits)
	m := make([]int, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m[i*cols+j] = bits.GrayCode(i)<<uint(cBits) | bits.GrayCode(j)
		}
	}
	return m
}

// SnakeRingIntoGrid maps a side^2-node ring onto a side x side grid in
// boustrophedon (snake) order: consecutive ring nodes are grid
// neighbours; only the closing edge stretches across the grid.
func SnakeRingIntoGrid(side int) []int {
	m := make([]int, side*side)
	idx := 0
	for r := 0; r < side; r++ {
		if r%2 == 0 {
			for c := 0; c < side; c++ {
				m[idx] = r*side + c
				idx++
			}
		} else {
			for c := side - 1; c >= 0; c-- {
				m[idx] = r*side + c
				idx++
			}
		}
	}
	return m
}
