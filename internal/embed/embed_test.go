package embed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/topology"
)

func TestValidate(t *testing.T) {
	if err := Validate([]int{0, 1, 2}, 4); err != nil {
		t.Fatal(err)
	}
	if err := Validate([]int{0, 0}, 4); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if err := Validate([]int{0, 4}, 4); err == nil {
		t.Fatal("out-of-range host accepted")
	}
}

func TestGrayRingIntoHypercubeDilationOne(t *testing.T) {
	for _, k := range []int{2, 4, 6, 10} {
		host := topology.NewHypercube(k)
		m := GrayRingIntoHypercube(k)
		if err := Validate(m, host.Nodes()); err != nil {
			t.Fatal(err)
		}
		max, avg := Dilation(host, m, RingEdges(1<<uint(k)))
		if max != 1 {
			t.Fatalf("k=%d: Gray ring dilation %d, want 1", k, max)
		}
		if math.Abs(avg-1) > 1e-12 {
			t.Fatalf("k=%d: avg dilation %v", k, avg)
		}
	}
}

func TestGrayGridIntoHypercubeDilationOne(t *testing.T) {
	host := topology.NewHypercube(7)
	m := GrayGridIntoHypercube(3, 4) // 8 x 16 grid into 128-node cube
	if err := Validate(m, host.Nodes()); err != nil {
		t.Fatal(err)
	}
	max, _ := Dilation(host, m, Grid2DEdges(8, 16))
	if max != 1 {
		t.Fatalf("Gray grid dilation %d, want 1", max)
	}
}

func TestNaiveRingIntoHypercubeStretches(t *testing.T) {
	// Without the Gray code, the natural (identity) embedding of the
	// ring dilates: consecutive integers can differ in many bits.
	host := topology.NewHypercube(6)
	max, _ := Dilation(host, Identity(64), RingEdges(64))
	if max <= 1 {
		t.Fatalf("identity ring embedding dilation %d; expected > 1", max)
	}
}

func TestAnythingIntoHypermeshDilationAtMostDiameter(t *testing.T) {
	// The 2D hypermesh has diameter 2, so EVERY embedding of EVERY
	// guest graph has dilation <= 2 — the strongest form of the paper's
	// "embeds other useful graphs" remark.
	host := topology.NewHypermesh(8, 2)
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(64)
	guests := [][]Edge{
		RingEdges(64),
		Grid2DEdges(8, 8),
		HypercubeEdges(6),
		ButterflyStageEdges(64, 5),
	}
	for gi, edges := range guests {
		max, _ := Dilation(host, perm, edges)
		if max > 2 {
			t.Fatalf("guest %d: dilation %d > hypermesh diameter", gi, max)
		}
	}
}

func TestButterflyStageDilationOnMesh(t *testing.T) {
	// Stage bit b of the row-major embedding dilates to 2^(b mod axBits)
	// on the mesh — the per-stage distance of §III.B.
	host := topology.NewMesh2D(8, false)
	for b := 0; b < 6; b++ {
		max, avg := Dilation(host, Identity(64), ButterflyStageEdges(64, b))
		want := 1 << uint(b%3)
		if max != want {
			t.Fatalf("bit %d: dilation %d, want %d", b, max, want)
		}
		if math.Abs(avg-float64(want)) > 1e-12 {
			t.Fatalf("bit %d: avg %v, want %d (all pairs equidistant)", b, avg, want)
		}
	}
}

func TestButterflyStageDilationOnHypercubeIsOne(t *testing.T) {
	host := topology.NewHypercube(6)
	for b := 0; b < 6; b++ {
		max, _ := Dilation(host, Identity(64), ButterflyStageEdges(64, b))
		if max != 1 {
			t.Fatalf("bit %d: dilation %d on hypercube", b, max)
		}
	}
}

func TestSnakeRingIntoGrid(t *testing.T) {
	side := 8
	host := topology.NewMesh2D(side, false)
	m := SnakeRingIntoGrid(side)
	if err := Validate(m, host.Nodes()); err != nil {
		t.Fatal(err)
	}
	edges := RingEdges(side * side)
	// All edges except the closing one are unit; the closing edge spans
	// the grid's left column.
	for i, e := range edges[:len(edges)-1] {
		if d := host.Distance(m[e[0]], m[e[1]]); d != 1 {
			t.Fatalf("snake edge %d dilated to %d", i, d)
		}
	}
	closing := host.Distance(m[side*side-1], m[0])
	if closing != side-1 {
		t.Fatalf("closing edge distance %d, want %d", closing, side-1)
	}
	// On a torus the closing edge collapses to 1.
	torus := topology.NewMesh2D(side, true)
	if d := torus.Distance(m[side*side-1], m[0]); d != 1 {
		t.Fatalf("torus closing edge distance %d, want 1", d)
	}
}

func TestEdgeGenerators(t *testing.T) {
	if len(RingEdges(1)) != 0 {
		t.Fatal("degenerate ring has edges")
	}
	if got := len(Grid2DEdges(3, 4)); got != 3*3+2*4 {
		t.Fatalf("grid edges = %d", got)
	}
	if got := len(HypercubeEdges(4)); got != 16*4/2 {
		t.Fatalf("hypercube edges = %d", got)
	}
	if got := len(ButterflyStageEdges(64, 0)); got != 32 {
		t.Fatalf("butterfly edges = %d", got)
	}
}

func TestGrayCodesAreBijective(t *testing.T) {
	m := GrayRingIntoHypercube(8)
	seen := map[int]bool{}
	for _, h := range m {
		if seen[h] {
			t.Fatal("Gray code repeated")
		}
		seen[h] = true
	}
	_ = bits.GrayCode(0)
}

func TestDilationPanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range edge")
		}
	}()
	Dilation(topology.NewHypercube(2), Identity(4), []Edge{{0, 9}})
}
