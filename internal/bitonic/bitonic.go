// Package bitonic implements Batcher's bitonic sorting network and its
// execution on the simulated machines of package netsim.
//
// The paper's §IV.A cites the companion comparison (Szymanski, ICPP'91)
// of the Bitonic sort on the 2D mesh, 2D hypermesh and binary hypercube;
// like the FFT, the bitonic sort is an ASCEND/DESCEND algorithm whose
// every communication is a butterfly exchange over one element-address
// bit, so the same machinery (and the same per-topology step accounting)
// applies.
package bitonic

import (
	"cmp"
	"fmt"

	"repro/internal/bits"
	"repro/internal/layout"
	"repro/internal/netsim"
)

// Stage is one compare-exchange stage of the network: every element e is
// paired with e XOR J inside the merge block of size K.
type Stage struct {
	K int // merge block size (direction selector)
	J int // partner distance; the exchanged address bit is log2(J)
}

// Bit returns the element-address bit exchanged by the stage.
func (s Stage) Bit() int { return bits.Log2(s.J) }

// Schedule returns the bitonic sorting network for n = 2^k elements:
// k*(k+1)/2 stages of butterfly exchanges.
func Schedule(n int) ([]Stage, error) {
	if !bits.IsPow2(n) {
		return nil, fmt.Errorf("bitonic: size %d is not a power of two", n)
	}
	var out []Stage
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j >= 1; j /= 2 {
			out = append(out, Stage{K: k, J: j})
		}
	}
	return out, nil
}

// StageCount returns len(Schedule(n)) in closed form: with k = log2(n),
// k*(k+1)/2 stages.
func StageCount(n int) int {
	k := bits.Log2(n)
	return k * (k + 1) / 2
}

// keep computes the post-exchange value at element index e for one
// stage: whether e keeps the minimum or maximum of (self, partner).
func keep[T cmp.Ordered](st Stage, e int, self, partner T) T {
	ascending := e&st.K == 0
	lower := e&st.J == 0
	if ascending == lower {
		return min(self, partner)
	}
	return max(self, partner)
}

// Sort sorts data in place with the bitonic network (ascending). It is
// the sequential reference the distributed runs are checked against.
func Sort[T cmp.Ordered](data []T) error {
	sched, err := Schedule(len(data))
	if err != nil {
		return err
	}
	for _, st := range sched {
		for e := 0; e < len(data); e++ {
			p := e ^ st.J
			if p > e {
				lo, hi := keep(st, e, data[e], data[p]), keep(st, p, data[p], data[e])
				data[e], data[p] = lo, hi
			}
		}
	}
	return nil
}

// Result reports one distributed bitonic sort execution.
type Result struct {
	// TransferSteps is the total number of data-transfer steps over all
	// k*(k+1)/2 compare-exchange stages.
	TransferSteps int
	// ComputeSteps is the number of parallel compare steps, k*(k+1)/2.
	ComputeSteps int
}

// Run sorts n = m.Nodes() keys, one per processing element, on the
// simulated machine and returns the sorted sequence (in element order)
// along with the step counts.
func Run[T cmp.Ordered](m netsim.Machine[T], data []T, lay layout.Layout) (*Result, []T, error) {
	n := m.Nodes()
	if len(data) != n {
		return nil, nil, fmt.Errorf("bitonic: input length %d != %d nodes", len(data), n)
	}
	sched, err := Schedule(n)
	if err != nil {
		return nil, nil, err
	}
	if lay == nil {
		lay = layout.RowMajor(n)
	}
	lp := layout.Permutation(lay, n)
	if err := lp.Validate(); err != nil {
		return nil, nil, fmt.Errorf("bitonic: layout is not a bijection: %w", err)
	}
	elemAt := lp.Inverse()
	vals := m.Values()
	for e := 0; e < n; e++ {
		vals[lp[e]] = data[e]
	}
	m.ResetStats()
	for _, st := range sched {
		stage := st
		err := m.ExchangeCompute(lay.NodeBit(st.Bit()), func(self, partner T, node int) T {
			return keep(stage, elemAt[node], self, partner)
		})
		if err != nil {
			return nil, nil, err
		}
	}
	out := make([]T, n)
	vals = m.Values()
	for e := 0; e < n; e++ {
		out[e] = vals[lp[e]]
	}
	s := m.Stats()
	return &Result{TransferSteps: s.Steps, ComputeSteps: s.ComputeSteps}, out, nil
}

// MeshSteps returns, in closed form, the number of data-transfer steps
// the bitonic sort needs on a side^2 mesh under the given layout: each
// stage exchanging element bit b costs 2^(axis position of NodeBit(b)).
func MeshSteps(n int, lay layout.Layout) (int, error) {
	sched, err := Schedule(n)
	if err != nil {
		return 0, err
	}
	axBits := bits.Log2(n) / 2
	if axBits*2 != bits.Log2(n) {
		return 0, fmt.Errorf("bitonic: mesh steps need a square machine, n=%d", n)
	}
	if lay == nil {
		lay = layout.RowMajor(n)
	}
	total := 0
	for _, st := range sched {
		total += 1 << uint(lay.NodeBit(st.Bit())%axBits)
	}
	return total, nil
}

// DirectSteps returns the data-transfer steps on a hypercube or 2D
// hypermesh: one step per stage, k*(k+1)/2 total.
func DirectSteps(n int) int { return StageCount(n) }
