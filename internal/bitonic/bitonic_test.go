package bitonic

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/layout"
	"repro/internal/netsim"
)

func TestScheduleShape(t *testing.T) {
	sched, err := Schedule(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != StageCount(16) {
		t.Fatalf("schedule has %d stages, closed form says %d", len(sched), StageCount(16))
	}
	if StageCount(16) != 10 {
		t.Fatalf("StageCount(16) = %d, want 10", StageCount(16))
	}
	if StageCount(4096) != 78 {
		t.Fatalf("StageCount(4096) = %d, want 78", StageCount(4096))
	}
	// First stage: K=2, J=1; last stage: K=n, J=1.
	if sched[0].K != 2 || sched[0].J != 1 {
		t.Fatalf("first stage %+v", sched[0])
	}
	last := sched[len(sched)-1]
	if last.K != 16 || last.J != 1 {
		t.Fatalf("last stage %+v", last)
	}
}

func TestScheduleRejectsBadSize(t *testing.T) {
	if _, err := Schedule(12); err == nil {
		t.Fatal("Schedule(12) accepted")
	}
}

func TestSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 64, 1024} {
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		want := append([]float64(nil), data...)
		sort.Float64s(want)
		if err := Sort(data); err != nil {
			t.Fatal(err)
		}
		for i := range data {
			//fftlint:ignore floatcmp sorting only permutes values, so the output must equal the reference bitwise
			if data[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestSortZeroOnePrinciple(t *testing.T) {
	// A comparison network sorts all inputs iff it sorts every 0-1
	// input; exhaustively verify for n=16 (65536 cases).
	n := 16
	for mask := 0; mask < 1<<n; mask++ {
		data := make([]int, n)
		ones := 0
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				data[i] = 1
				ones++
			}
		}
		if err := Sort(data); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			want := 0
			if i >= n-ones {
				want = 1
			}
			if data[i] != want {
				t.Fatalf("mask %b not sorted: %v", mask, data)
			}
		}
	}
}

func TestSortDuplicatesAndSortedInputs(t *testing.T) {
	data := []int{5, 5, 5, 5, 1, 1, 1, 1}
	if err := Sort(data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if data[i] != 1 || data[i+4] != 5 {
			t.Fatalf("duplicates mishandled: %v", data)
		}
	}
	asc := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if err := Sort(asc); err != nil {
		t.Fatal(err)
	}
	for i := range asc {
		if asc[i] != i+1 {
			t.Fatalf("already-sorted input broken: %v", asc)
		}
	}
}

func TestSortQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(7))
		data := make([]int, n)
		for i := range data {
			data[i] = rng.Intn(100)
		}
		if err := Sort(data); err != nil {
			return false
		}
		return sort.IntsAreSorted(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func distributedMachines(t *testing.T, n int) []netsim.Machine[float64] {
	t.Helper()
	side := 1
	for side*side < n {
		side *= 2
	}
	if side*side != n {
		t.Fatalf("n=%d is not a square power of two", n)
	}
	mesh, err := netsim.NewMesh[float64](side, true, netsim.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dims := 0
	for 1<<dims < n {
		dims++
	}
	cube, err := netsim.NewHypercube[float64](dims, netsim.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hm, err := netsim.NewHypermesh[float64](side, 2, netsim.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return []netsim.Machine[float64]{mesh, cube, hm}
}

func TestRunSortsOnAllMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	want := append([]float64(nil), data...)
	sort.Float64s(want)
	for _, m := range distributedMachines(t, n) {
		res, out, err := Run(m, data, nil)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for i := range out {
			//fftlint:ignore floatcmp sorting only permutes values, so the output must equal the reference bitwise
			if out[i] != want[i] {
				t.Fatalf("%s: unsorted at %d", m.Name(), i)
			}
		}
		if res.ComputeSteps != StageCount(n) {
			t.Fatalf("%s: compute steps %d, want %d", m.Name(), res.ComputeSteps, StageCount(n))
		}
	}
}

func TestRunStepCounts(t *testing.T) {
	n := 64
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(n - i)
	}
	ms := distributedMachines(t, n)
	meshRes, _, err := Run(ms[0], data, nil)
	if err != nil {
		t.Fatal(err)
	}
	cubeRes, _, err := Run(ms[1], data, nil)
	if err != nil {
		t.Fatal(err)
	}
	hmRes, _, err := Run(ms[2], data, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hypercube and hypermesh: 1 step per stage.
	if cubeRes.TransferSteps != DirectSteps(n) {
		t.Fatalf("hypercube steps %d, want %d", cubeRes.TransferSteps, DirectSteps(n))
	}
	if hmRes.TransferSteps != DirectSteps(n) {
		t.Fatalf("hypermesh steps %d, want %d", hmRes.TransferSteps, DirectSteps(n))
	}
	// Mesh: matches the closed form.
	want, err := MeshSteps(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if meshRes.TransferSteps != want {
		t.Fatalf("mesh steps %d, closed form %d", meshRes.TransferSteps, want)
	}
	if meshRes.TransferSteps <= hmRes.TransferSteps {
		t.Fatal("mesh should pay more transfer steps than the hypermesh")
	}
}

func TestShuffledLayoutReducesMeshSteps(t *testing.T) {
	// At 4K keys the shuffled row-major layout reduces mesh steps
	// substantially (the [13] comparison assumes an efficient layout).
	n := 4096
	rm, err := MeshSteps(n, layout.RowMajor(n))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := MeshSteps(n, layout.ShuffledRowMajor(n))
	if err != nil {
		t.Fatal(err)
	}
	if sh >= rm {
		t.Fatalf("shuffled (%d) not cheaper than row-major (%d)", sh, rm)
	}
	// Closed-form spot checks: row-major 618, shuffled 417 at n=4096.
	if rm != 618 {
		t.Fatalf("row-major mesh steps = %d, want 618", rm)
	}
	if sh != 417 {
		t.Fatalf("shuffled mesh steps = %d, want 417", sh)
	}
}

func TestRunWithShuffledLayoutStillSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 256
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	want := append([]float64(nil), data...)
	sort.Float64s(want)
	mesh, _ := netsim.NewMesh[float64](16, true, netsim.Config{})
	res, out, err := Run(mesh, data, layout.ShuffledRowMajor(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		//fftlint:ignore floatcmp sorting only permutes values, so the output must equal the reference bitwise
		if out[i] != want[i] {
			t.Fatalf("unsorted at %d", i)
		}
	}
	closed, _ := MeshSteps(n, layout.ShuffledRowMajor(n))
	if res.TransferSteps != closed {
		t.Fatalf("measured %d steps, closed form %d", res.TransferSteps, closed)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	hm, _ := netsim.NewHypermesh[float64](4, 2, netsim.Config{})
	if _, _, err := Run(hm, make([]float64, 4), nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestMeshStepsRejectsNonSquare(t *testing.T) {
	if _, err := MeshSteps(32, nil); err == nil {
		t.Fatal("non-square size accepted")
	}
}

func BenchmarkSort4096(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append([]float64(nil), data...)
		if err := Sort(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedSortHypermesh4096(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hm, _ := netsim.NewHypermesh[float64](64, 2, netsim.Config{})
		if _, _, err := Run(hm, data, nil); err != nil {
			b.Fatal(err)
		}
	}
}
