package flowgraph

import (
	"math/rand"
	"testing"

	"repro/internal/fft"
)

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestBuildRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 3, 100} {
		if _, err := Build(n); err == nil {
			t.Errorf("Build(%d) accepted", n)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild(5) did not panic")
		}
	}()
	MustBuild(5)
}

func TestGraphShape(t *testing.T) {
	g := MustBuild(4096)
	if g.Inputs() != 4096 {
		t.Fatalf("Inputs = %d", g.Inputs())
	}
	if g.Ranks() != 12 {
		t.Fatalf("Ranks = %d, want 12", g.Ranks())
	}
	if g.Butterflies() != 12*2048 {
		t.Fatalf("Butterflies = %d", g.Butterflies())
	}
	if g.Edges() != 2*4096*12+4096 {
		t.Fatalf("Edges = %d", g.Edges())
	}
}

func TestValidateAcrossSizes(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64, 1024, 4096} {
		g := MustBuild(n)
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestStageBitsDescend(t *testing.T) {
	// The DIF schedule pairs the high bit first (elements n/2 apart) and
	// the low bit last — the DESCEND order the paper's algorithms use.
	g := MustBuild(256)
	for r := 0; r < g.Ranks(); r++ {
		if g.StageBit(r) != g.Ranks()-1-r {
			t.Fatalf("StageBit(%d) = %d", r, g.StageBit(r))
		}
	}
}

func TestEvaluateMatchesFFT(t *testing.T) {
	for _, n := range []int{2, 8, 64, 512, 4096} {
		g := MustBuild(n)
		p := fft.MustPlan(n)
		x := randomSignal(n, int64(n))
		got := g.Evaluate(x)
		want := p.Forward(x)
		if d := fft.MaxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: flow graph evaluation differs from FFT by %g", n, d)
		}
	}
}

func TestEvaluateMatchesDFT(t *testing.T) {
	n := 128
	g := MustBuild(n)
	x := randomSignal(n, 5)
	if d := fft.MaxAbsDiff(g.Evaluate(x), fft.DFT(x)); d > 1e-9*float64(n) {
		t.Fatalf("flow graph differs from DFT by %g", d)
	}
}

func TestEvaluateRankPreservesLength(t *testing.T) {
	g := MustBuild(32)
	v := randomSignal(32, 9)
	for r := 0; r < g.Ranks(); r++ {
		v = g.EvaluateRank(r, v)
		if len(v) != 32 {
			t.Fatalf("rank %d changed vector length", r)
		}
	}
}

func TestPartnerInvolution(t *testing.T) {
	g := MustBuild(64)
	for r := 0; r < g.Ranks(); r++ {
		for i := 0; i < 64; i++ {
			if g.Partner(r, g.Partner(r, i)) != i {
				t.Fatalf("Partner not an involution at rank %d", r)
			}
		}
	}
}

func TestTwiddleExponentSharedWithinPair(t *testing.T) {
	// Both members of a butterfly see the same twiddle exponent — the
	// exponent is a function of the pair, not the member.
	g := MustBuild(128)
	for r := 0; r < g.Ranks(); r++ {
		for i := 0; i < 128; i++ {
			if g.TwiddleExponent(r, i) != g.TwiddleExponent(r, g.Partner(r, i)) {
				t.Fatalf("twiddle exponent differs within pair at rank %d index %d", r, i)
			}
		}
	}
}

func TestFirstRankTwiddleExponents(t *testing.T) {
	// Rank 0 of an n-point DIF graph pairs (j, j+n/2) with exponent j.
	g := MustBuild(16)
	for j := 0; j < 8; j++ {
		if got := g.TwiddleExponent(0, j); got != j {
			t.Fatalf("rank-0 exponent at %d = %d, want %d", j, got, j)
		}
	}
	// Last rank uses exponent 0 everywhere.
	last := g.Ranks() - 1
	for j := 0; j < 16; j++ {
		if got := g.TwiddleExponent(last, j); got != 0 {
			t.Fatalf("last-rank exponent at %d = %d, want 0", j, got)
		}
	}
}

func TestCrossPermutationMatchesPartner(t *testing.T) {
	g := MustBuild(64)
	for r := 0; r < g.Ranks(); r++ {
		p := g.CrossPermutation(r)
		for i, v := range p {
			if v != g.Partner(r, i) {
				t.Fatalf("cross permutation and Partner disagree at rank %d", r)
			}
		}
	}
}

func BenchmarkEvaluate4096(b *testing.B) {
	g := MustBuild(4096)
	x := randomSignal(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Evaluate(x)
	}
}

func TestStageBitPanicsOutOfRange(t *testing.T) {
	g := MustBuild(16)
	for _, r := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("StageBit(%d) did not panic", r)
				}
			}()
			g.StageBit(r)
		}()
	}
}

func TestEvaluatePanicsOnBadLength(t *testing.T) {
	g := MustBuild(16)
	defer func() {
		if recover() == nil {
			t.Fatal("Evaluate with wrong length did not panic")
		}
	}()
	g.Evaluate(make([]complex128, 8))
}

func TestEvaluateRankPanicsOnBadLength(t *testing.T) {
	g := MustBuild(16)
	defer func() {
		if recover() == nil {
			t.Fatal("EvaluateRank with wrong length did not panic")
		}
	}()
	g.EvaluateRank(0, make([]complex128, 4))
}
