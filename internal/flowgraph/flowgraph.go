// Package flowgraph builds and evaluates the data-flow graph of the
// parallel radix-2 Cooley–Tukey FFT — the paper's Fig. 3: an SW-banyan
// (Butterfly) graph of log2(N) ranks followed by a bit-reversal
// permutation of the outputs.
//
// The graph is an explicit object so that embeddings can be reasoned
// about: each rank's cross edges form exactly the Butterfly-exchange
// permutation of one address bit, which is what the mapping layer
// (package parfft) schedules onto mesh, hypercube and hypermesh links.
// Evaluating the graph reproduces the DFT bit-for-bit against package
// fft, which pins down every twiddle assignment.
package flowgraph

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/fft"
	"repro/internal/permute"
)

// Graph is the FFT data-flow graph on n = 2^k inputs. Rank r (0-based,
// executed in increasing order) pairs vertices whose indices differ in
// bit k-1-r, i.e. the first rank pairs elements n/2 apart and the last
// pairs adjacent elements — the decimation-in-frequency schedule.
type Graph struct {
	n     int
	ranks int
	plan  *fft.Plan
}

// Build constructs the flow graph for n inputs (a power of two).
func Build(n int) (*Graph, error) {
	p, err := fft.NewPlan(n)
	if err != nil {
		return nil, fmt.Errorf("flowgraph: %w", err)
	}
	return &Graph{n: n, ranks: p.Stages(), plan: p}, nil
}

// MustBuild is Build for sizes known to be valid; it panics on error.
func MustBuild(n int) *Graph {
	g, err := Build(n)
	if err != nil {
		panic(err)
	}
	return g
}

// Inputs returns n.
func (g *Graph) Inputs() int { return g.n }

// Ranks returns the number of butterfly ranks, log2(n).
func (g *Graph) Ranks() int { return g.ranks }

// Butterflies returns the total number of two-input butterfly operations
// in the graph: ranks * n/2.
func (g *Graph) Butterflies() int { return g.ranks * g.n / 2 }

// Edges returns the total number of data-flow edges between ranks:
// every vertex of every rank has two outputs, so 2 * n * ranks, plus the
// n bit-reversal output wires.
func (g *Graph) Edges() int { return 2*g.n*g.ranks + g.n }

// StageBit returns the address bit paired at rank r: bit k-1-r.
func (g *Graph) StageBit(r int) int {
	if r < 0 || r >= g.ranks {
		panic(fmt.Sprintf("flowgraph: rank %d out of range [0,%d)", r, g.ranks))
	}
	return g.ranks - 1 - r
}

// CrossPermutation returns the permutation realized by rank r's cross
// edges: the Butterfly exchange of the rank's stage bit. The paper's
// observation that the hypercube and hypermesh "can implement all
// Butterfly permutations without conflict" is about these permutations.
func (g *Graph) CrossPermutation(r int) permute.Permutation {
	return permute.ButterflyExchange(g.n, g.StageBit(r))
}

// OutputPermutation returns the terminal bit-reversal wiring.
func (g *Graph) OutputPermutation() permute.Permutation {
	return permute.BitReversal(g.n)
}

// Partner returns the index that vertex i is paired with at rank r.
func (g *Graph) Partner(r, i int) int {
	return bits.FlipBit(i, g.StageBit(r))
}

// TwiddleExponent returns the twiddle exponent applied to the lower
// (bit = 1) output of the butterfly containing vertex i at rank r.
func (g *Graph) TwiddleExponent(r, i int) int {
	b := g.StageBit(r)
	j := bits.SetBit(i, b, 0) // the upper element of the pair
	return g.plan.DIFTwiddleExponent(b, j)
}

// EvaluateRank applies rank r of the graph to the value vector in,
// returning the next rank's values. len(in) must be n.
func (g *Graph) EvaluateRank(r int, in []complex128) []complex128 {
	if len(in) != g.n {
		panic(fmt.Sprintf("flowgraph: rank input length %d != %d", len(in), g.n))
	}
	b := g.StageBit(r)
	out := make([]complex128, g.n)
	for i := 0; i < g.n; i++ {
		if bits.Bit(i, b) == 0 {
			j := bits.FlipBit(i, b)
			w := g.plan.Twiddle(g.plan.DIFTwiddleExponent(b, i))
			out[i], out[j] = fft.Butterfly(in[i], in[j], w)
		}
	}
	return out
}

// Evaluate runs the complete flow graph — all ranks, then the
// bit-reversal output permutation — computing the DFT of x.
func (g *Graph) Evaluate(x []complex128) []complex128 {
	if len(x) != g.n {
		panic(fmt.Sprintf("flowgraph: input length %d != %d", len(x), g.n))
	}
	v := append([]complex128(nil), x...)
	for r := 0; r < g.ranks; r++ {
		v = g.EvaluateRank(r, v)
	}
	return permute.Apply(g.OutputPermutation(), v)
}

// Validate checks structural invariants: every rank's cross permutation
// is a fixed-point-free involution pairing indices at Hamming distance
// one, and the output permutation is the bit reversal.
func (g *Graph) Validate() error {
	for r := 0; r < g.ranks; r++ {
		p := g.CrossPermutation(r)
		if err := p.Validate(); err != nil {
			return fmt.Errorf("flowgraph: rank %d: %w", r, err)
		}
		for i, v := range p {
			if v == i {
				return fmt.Errorf("flowgraph: rank %d has fixed point %d", r, i)
			}
			if p[v] != i {
				return fmt.Errorf("flowgraph: rank %d pairing not symmetric at %d", r, i)
			}
			if bits.HammingDistance(i, v) != 1 {
				return fmt.Errorf("flowgraph: rank %d pairs %d with %d across >1 bit", r, i, v)
			}
			if g.Partner(r, i) != v {
				return fmt.Errorf("flowgraph: Partner inconsistent at rank %d index %d", r, i)
			}
		}
	}
	if !g.OutputPermutation().Equal(permute.BitReversal(g.n)) {
		return fmt.Errorf("flowgraph: output permutation is not the bit reversal")
	}
	return nil
}
