package congest

import (
	"math/rand"
	"testing"

	"repro/internal/permute"
	"repro/internal/topology"
)

func TestIdentityHasNoCongestion(t *testing.T) {
	res, err := Analyze(topology.NewHypercube(6), permute.Identity(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxCongestion != 0 || res.TotalHops != 0 || res.BisectionCrossings != 0 {
		t.Fatalf("identity congestion %+v", res)
	}
}

func TestButterflyTopBitSendsHalfAcrossBisector(t *testing.T) {
	// The paper's §V point: the last DESCEND stage (top address bit)
	// sends every packet across the hypercube bisector — N packets, all
	// crossing, max congestion 1 (each uses its own dimension link).
	h := topology.NewHypercube(8)
	p := permute.ButterflyExchange(256, 7)
	res, err := Analyze(h, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.BisectionCrossings != 256 {
		t.Fatalf("crossings = %d, want 256", res.BisectionCrossings)
	}
	if res.MaxCongestion != 1 {
		t.Fatalf("max congestion = %d, want 1 (dedicated dimension links)", res.MaxCongestion)
	}
	// With N/2 bisection links the drain bound is 2 (one each way ...
	// counted per direction the bound is crossings / links).
	if lb := res.StepLowerBound(h.BisectionLinks()); lb < 1 {
		t.Fatalf("lower bound %d", lb)
	}
}

func TestMeshButterflyCongestionGrowsWithStage(t *testing.T) {
	// On the mesh, stage bit b (within the column half) loads the
	// central links with 2^b packets per direction — the distance-d
	// pipelining cost of §III.B seen as congestion.
	m := topology.NewMesh2D(16, false)
	prev := 0
	for b := 0; b < 4; b++ {
		res, err := Analyze(m, permute.ButterflyExchange(256, b))
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxCongestion != 1<<uint(b) {
			t.Fatalf("bit %d: congestion %d, want %d", b, res.MaxCongestion, 1<<uint(b))
		}
		if res.MaxCongestion < prev {
			t.Fatal("congestion not monotone in stage distance")
		}
		prev = res.MaxCongestion
	}
}

func TestHypercubeTransposeHotspot(t *testing.T) {
	// The transpose pattern congests greedy e-cube routing: some links
	// carry far more than one packet — Valiant's motivation (ABL4).
	dims := 10
	n := 1 << uint(dims)
	h := topology.NewHypercube(dims)
	p := make(permute.Permutation, n)
	half := dims / 2
	lowMask := 1<<uint(half) - 1
	for i := range p {
		p[i] = (i&lowMask)<<uint(half) | i>>uint(half)
	}
	res, err := Analyze(h, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxCongestion < 4 {
		t.Fatalf("transpose congestion = %d; expected a hotspot", res.MaxCongestion)
	}
	// Random permutations congest far less per link on average.
	rng := rand.New(rand.NewSource(1))
	rres, err := Analyze(h, permute.Random(n, rng))
	if err != nil {
		t.Fatal(err)
	}
	if rres.MaxCongestion >= res.MaxCongestion {
		t.Fatalf("random (%d) as congested as transpose (%d)", rres.MaxCongestion, res.MaxCongestion)
	}
}

func TestMeshBitReversalBisectionLoad(t *testing.T) {
	// The mesh's bit reversal drives many packets through sqrt(N)
	// bisection links: the §V argument for why it is slow there.
	m := topology.NewMesh2D(16, false)
	res, err := Analyze(m, permute.BitReversal(256))
	if err != nil {
		t.Fatal(err)
	}
	lb := res.StepLowerBound(m.BisectionLinks())
	if lb < 4 {
		t.Fatalf("mesh bit-reversal lower bound %d; expected meaningful bisection pressure", lb)
	}
}

func TestStepLowerBoundUsesBothTerms(t *testing.T) {
	r := &Result{MaxCongestion: 3, BisectionCrossings: 100}
	if r.StepLowerBound(10) != 10 {
		t.Fatalf("bisection-bound case = %d", r.StepLowerBound(10))
	}
	if r.StepLowerBound(1000) != 3 {
		t.Fatalf("congestion-bound case = %d", r.StepLowerBound(1000))
	}
	if r.StepLowerBound(0) != 3 {
		t.Fatalf("zero links case = %d", r.StepLowerBound(0))
	}
}

func TestAnalyzeValidates(t *testing.T) {
	h := topology.NewHypercube(3)
	if _, err := Analyze(h, permute.Identity(4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Analyze(h, permute.Permutation{0, 0, 1, 2, 4, 5, 6, 7}); err == nil {
		t.Fatal("invalid permutation accepted")
	}
}

func TestTotalHopsMatchesDistances(t *testing.T) {
	h := topology.NewHypercube(6)
	rng := rand.New(rand.NewSource(2))
	p := permute.Random(64, rng)
	res, err := Analyze(h, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for src, dst := range p {
		want += h.Distance(src, dst)
	}
	if res.TotalHops != want {
		t.Fatalf("TotalHops = %d, want %d (shortest paths)", res.TotalHops, want)
	}
}

func BenchmarkAnalyzeBitReversal4096(b *testing.B) {
	h := topology.NewHypercube(12)
	p := permute.BitReversal(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(h, p); err != nil {
			b.Fatal(err)
		}
	}
}
