// Package congest measures link-level congestion of routed permutations:
// how many packets cross each directed link when every packet follows
// the topology's deterministic shortest path. Congestion lower-bounds
// the data-transfer steps of any schedule that uses those paths, and the
// bisection cut explains §V: every Butterfly permutation of the FFT
// sends half the machine's packets across a bisector, so per-step
// bisection bandwidth decides the race.
package congest

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/permute"
	"repro/internal/topology"
)

// Link is a directed edge between adjacent nodes.
type Link struct {
	From, To int
}

// Pather produces the deterministic routing path (inclusive of both
// endpoints) the analysis charges packets to. topology.Mesh2D and
// topology.Hypercube satisfy it with their dimension-order routers.
type Pather interface {
	topology.Topology
	RoutePath(a, b int) []int
}

// Result summarizes the congestion of routing one permutation.
type Result struct {
	// MaxCongestion is the heaviest directed-link load — a lower bound
	// on the steps of any schedule using these paths.
	MaxCongestion int
	// TotalHops is the sum of all path lengths.
	TotalHops int
	// BusiestLink is one link achieving MaxCongestion.
	BusiestLink Link
	// BisectionCrossings counts packets whose path crosses the standard
	// bisector (top address bit for hypercubes, middle column boundary
	// for meshes).
	BisectionCrossings int
}

// Analyze routes permutation p over the topology's deterministic paths
// and tallies per-link load.
func Analyze(t Pather, p permute.Permutation) (*Result, error) {
	if len(p) != t.Nodes() {
		return nil, fmt.Errorf("congest: permutation size %d != %d nodes", len(p), t.Nodes())
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("congest: %w", err)
	}
	load := make(map[Link]int)
	res := &Result{}
	for src, dst := range p {
		path := t.RoutePath(src, dst)
		res.TotalHops += len(path) - 1
		crossed := false
		for i := 1; i < len(path); i++ {
			l := Link{From: path[i-1], To: path[i]}
			load[l]++
			if load[l] > res.MaxCongestion {
				res.MaxCongestion = load[l]
				res.BusiestLink = l
			}
			if !crossed && crossesBisector(t, path[i-1], path[i]) {
				crossed = true
			}
		}
		if crossed {
			res.BisectionCrossings++
		}
	}
	return res, nil
}

// crossesBisector reports whether the hop from a to b crosses the
// standard bisector of the topology.
func crossesBisector(t Pather, a, b int) bool {
	switch tt := t.(type) {
	case *topology.Hypercube:
		top := tt.Dims - 1
		return bits.Bit(a, top) != bits.Bit(b, top)
	case *topology.Mesh2D:
		half := tt.Side / 2
		ac, bc := a%tt.Side, b%tt.Side
		return (ac < half) != (bc < half)
	default:
		return false
	}
}

// StepLowerBound returns max(MaxCongestion, ceil(BisectionCrossings /
// bisectionLinks)): no schedule over these paths can finish faster than
// its most loaded link, nor faster than the bisector can drain.
func (r *Result) StepLowerBound(bisectionLinks int) int {
	lb := r.MaxCongestion
	if bisectionLinks > 0 {
		if b := (r.BisectionCrossings + bisectionLinks - 1) / bisectionLinks; b > lb {
			lb = b
		}
	}
	return lb
}
