// Package matrixalg implements the distributed matrix algorithms the
// paper's §II groups with the FFT and bitonic sort ("the majority of
// parallel algorithms, such as the Bitonic sort, the FFT, and matrix
// algorithms, use these permutations"): matrix transpose, matrix-vector
// multiplication and Cannon's matrix-matrix multiplication, all with one
// element per processing element on the simulated machines.
//
// Step economics on the three networks:
//
//   - transpose: one permutation — <= 3 net steps on a 2D hypermesh,
//     log N bit-swap steps on the hypercube, O(sqrt N) on the mesh;
//   - matvec: a column broadcast (log b exchanges) plus a row reduction
//     (log b exchanges) — exchange-bound like the FFT's butterflies;
//   - Cannon: 2 skew permutations plus b-1 unit shifts; shifts are
//     dimension-local single steps on both the torus and the hypermesh,
//     so the networks tie and the algorithm is compute-bound — an honest
//     case where the hypermesh buys nothing.
package matrixalg

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/netsim"
	"repro/internal/permute"
)

// sideOf returns b with b*b == n, or an error.
func sideOf(n int) (int, error) {
	b := 0
	for (b+1)*(b+1) <= n {
		b++
	}
	if b*b != n {
		return 0, fmt.Errorf("matrixalg: machine size %d is not a perfect square", n)
	}
	return b, nil
}

// Transpose transposes the b x b matrix held one element per node in
// row-major order, returning the number of data-transfer steps.
func Transpose(m netsim.Machine[float64]) (int, error) {
	b, err := sideOf(m.Nodes())
	if err != nil {
		return 0, err
	}
	return m.Route(permute.Transpose(b, b))
}

// MatVecResult reports a distributed matrix-vector multiplication.
type MatVecResult struct {
	// Y is the result vector of length b.
	Y []float64
	// Steps is the total data-transfer steps (broadcast + reduction).
	Steps int
}

// matvecEntry carries the matrix element and the vector operand through
// the broadcast/reduce phases.
type matvecEntry struct {
	a float64 // matrix element (constant)
	v float64 // broadcast vector element, then the running partial sum
}

// MatVec computes y = A*x for a b x b matrix A distributed one element
// per node (row-major) and a dense vector x of length b. The vector is
// loaded on the diagonal, broadcast down the columns with log2(b)
// butterfly exchanges, multiplied locally, and summed across the rows
// with log2(b) more exchanges; every node of row i ends holding y[i].
func MatVec(m netsim.Machine[matvecEntry], a []float64, x []float64) (*MatVecResult, error) {
	n := m.Nodes()
	b, err := sideOf(n)
	if err != nil {
		return nil, err
	}
	if !bits.IsPow2(b) {
		return nil, fmt.Errorf("matrixalg: matvec needs a power-of-two side, got %d", b)
	}
	if len(a) != n {
		return nil, fmt.Errorf("matrixalg: matrix has %d elements, want %d", len(a), n)
	}
	if len(x) != b {
		return nil, fmt.Errorf("matrixalg: vector has %d elements, want %d", len(x), b)
	}
	logB := bits.Log2(b)
	vals := m.Values()
	for node := 0; node < n; node++ {
		r, c := node/b, node%b
		e := matvecEntry{a: a[node]}
		if r == c {
			e.v = x[c]
		}
		vals[node] = e
	}
	m.ResetStats()

	// Column broadcast from the diagonal: after processing row-bit t,
	// every node whose row agrees with its column on the remaining bits
	// holds x[column]. Node address = r*b + c; row bits are the high
	// half (bits logB..2logB-1).
	for t := 0; t < logB; t++ {
		bit := logB + t
		tt := t
		err := m.ExchangeCompute(bit, func(self, partner matvecEntry, node int) matvecEntry {
			r, c := node/b, node%b
			if bits.Bit(r, tt) != bits.Bit(c, tt) {
				self.v = partner.v
			}
			return self
		})
		if err != nil {
			return nil, err
		}
	}
	// Local multiply.
	vals = m.Values()
	for node := range vals {
		vals[node].v *= vals[node].a
	}
	// Row reduction over the column bits (low half).
	for t := 0; t < logB; t++ {
		err := m.ExchangeCompute(t, func(self, partner matvecEntry, node int) matvecEntry {
			self.v += partner.v
			return self
		})
		if err != nil {
			return nil, err
		}
	}
	vals = m.Values()
	y := make([]float64, b)
	for r := 0; r < b; r++ {
		y[r] = vals[r*b].v
	}
	return &MatVecResult{Y: y, Steps: m.Stats().Steps}, nil
}

// CannonResult reports a distributed matrix-matrix multiplication.
type CannonResult struct {
	// C is the b x b product matrix, row-major.
	C []float64
	// SkewSteps is the cost of the two initial alignment permutations
	// and the final unskew.
	SkewSteps int
	// ShiftSteps is the cost of the 2*(b-1) unit shifts of the main
	// loop.
	ShiftSteps int
}

// TotalSteps returns all data-transfer steps.
func (r *CannonResult) TotalSteps() int { return r.SkewSteps + r.ShiftSteps }

// cannonEntry carries one element of A and one of B plus the running
// partial product.
type cannonEntry struct {
	a, b, c float64
}

// Cannon multiplies two b x b matrices distributed one element per node
// (row-major) with Cannon's algorithm: A's row i is pre-rotated left by
// i and B's column j up by j, then b iterations of local multiply-
// accumulate and unit rotations.
func Cannon(m netsim.Machine[cannonEntry], a, bm []float64) (*CannonResult, error) {
	n := m.Nodes()
	side, err := sideOf(n)
	if err != nil {
		return nil, err
	}
	if len(a) != n || len(bm) != n {
		return nil, fmt.Errorf("matrixalg: matrices have %d/%d elements, want %d", len(a), len(bm), n)
	}
	vals := m.Values()
	for node := 0; node < n; node++ {
		vals[node] = cannonEntry{a: a[node], b: bm[node]}
	}
	m.ResetStats()

	// Initial skews as permutations of the packed (a, b, c) registers
	// would move both operands together, so the skews are done as two
	// separate passes that only move one operand each; the machine cost
	// of a within-row (or within-column) rotation is one dimension-local
	// permutation.
	skewA := make(permute.Permutation, n)
	skewB := make(permute.Permutation, n)
	for node := 0; node < n; node++ {
		r, c := node/side, node%side
		skewA[node] = r*side + ((c - r + side) % side) // row i rotates left by i
		skewB[node] = ((r-c+side)%side)*side + c       // column j rotates up by j
	}
	pre := m.Stats().Steps
	if err := routeField(m, skewA, func(e *cannonEntry) *float64 { return &e.a }); err != nil {
		return nil, err
	}
	if err := routeField(m, skewB, func(e *cannonEntry) *float64 { return &e.b }); err != nil {
		return nil, err
	}
	skewSteps := m.Stats().Steps - pre

	shiftA := make(permute.Permutation, n)
	shiftB := make(permute.Permutation, n)
	for node := 0; node < n; node++ {
		r, c := node/side, node%side
		shiftA[node] = r*side + ((c - 1 + side) % side) // left by one
		shiftB[node] = ((r-1+side)%side)*side + c       // up by one
	}
	preShift := m.Stats().Steps
	for iter := 0; iter < side; iter++ {
		vals = m.Values()
		for node := range vals {
			vals[node].c += vals[node].a * vals[node].b
		}
		if iter == side-1 {
			break
		}
		if err := routeField(m, shiftA, func(e *cannonEntry) *float64 { return &e.a }); err != nil {
			return nil, err
		}
		if err := routeField(m, shiftB, func(e *cannonEntry) *float64 { return &e.b }); err != nil {
			return nil, err
		}
	}
	shiftSteps := m.Stats().Steps - preShift

	vals = m.Values()
	c := make([]float64, n)
	for node := range vals {
		c[node] = vals[node].c
	}
	return &CannonResult{C: c, SkewSteps: skewSteps, ShiftSteps: shiftSteps}, nil
}

// routeField routes only one float64 field of the packed register
// through permutation p, leaving the other fields in place. It works by
// temporarily lifting the field into a full register copy: route the
// whole struct, then merge the routed field back. The machine step cost
// is that of one Route call.
func routeField(m netsim.Machine[cannonEntry], p permute.Permutation, field func(*cannonEntry) *float64) error {
	n := m.Nodes()
	saved := make([]cannonEntry, n)
	copy(saved, m.Values())
	if _, err := m.Route(p); err != nil {
		return err
	}
	vals := m.Values()
	for node := 0; node < n; node++ {
		merged := saved[node]
		*field(&merged) = *field(&vals[node])
		vals[node] = merged
	}
	return nil
}

// MatVecMachine builds the machine register type for MatVec on a given
// network constructor; exposed so callers outside the package can
// instantiate machines with the unexported entry types.
func NewMeshMatVec(side int, wrap bool) (netsim.Machine[matvecEntry], error) {
	return netsim.NewMesh[matvecEntry](side, wrap, netsim.Config{})
}

// NewHypercubeMatVec builds a hypercube matvec machine.
func NewHypercubeMatVec(dims int) (netsim.Machine[matvecEntry], error) {
	return netsim.NewHypercube[matvecEntry](dims, netsim.Config{})
}

// NewHypermeshMatVec builds a hypermesh matvec machine.
func NewHypermeshMatVec(base, dims int) (netsim.Machine[matvecEntry], error) {
	return netsim.NewHypermesh[matvecEntry](base, dims, netsim.Config{})
}

// NewMeshCannon builds a torus Cannon machine.
func NewMeshCannon(side int, wrap bool) (netsim.Machine[cannonEntry], error) {
	return netsim.NewMesh[cannonEntry](side, wrap, netsim.Config{})
}

// NewHypercubeCannon builds a hypercube Cannon machine.
func NewHypercubeCannon(dims int) (netsim.Machine[cannonEntry], error) {
	return netsim.NewHypercube[cannonEntry](dims, netsim.Config{})
}

// NewHypermeshCannon builds a hypermesh Cannon machine.
func NewHypermeshCannon(base, dims int) (netsim.Machine[cannonEntry], error) {
	return netsim.NewHypermesh[cannonEntry](base, dims, netsim.Config{})
}
