package matrixalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/netsim"
)

func randomMatrix(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	return a
}

func TestTransposeOnAllMachines(t *testing.T) {
	b := 8
	n := b * b
	a := randomMatrix(n, 1)
	mesh, _ := netsim.NewMesh[float64](b, true, netsim.Config{})
	cube, _ := netsim.NewHypercube[float64](6, netsim.Config{})
	hm, _ := netsim.NewHypermesh[float64](b, 2, netsim.Config{})
	for _, m := range []netsim.Machine[float64]{mesh, cube, hm} {
		copy(m.Values(), a)
		steps, err := Transpose(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if steps <= 0 {
			t.Fatalf("%s: no steps", m.Name())
		}
		for r := 0; r < b; r++ {
			for c := 0; c < b; c++ {
				//fftlint:ignore floatcmp transpose moves values verbatim; bitwise equality is the routed-correctly property
				if m.Values()[c*b+r] != a[r*b+c] {
					t.Fatalf("%s: transpose wrong at (%d,%d)", m.Name(), r, c)
				}
			}
		}
	}
}

func TestTransposeHypermeshWithinThreeSteps(t *testing.T) {
	hm, _ := netsim.NewHypermesh[float64](16, 2, netsim.Config{})
	copy(hm.Values(), randomMatrix(256, 2))
	steps, err := Transpose(hm)
	if err != nil {
		t.Fatal(err)
	}
	if steps > 3 {
		t.Fatalf("hypermesh transpose took %d steps", steps)
	}
}

func TestMatVecMatchesDirect(t *testing.T) {
	b := 8
	n := b * b
	a := randomMatrix(n, 3)
	x := randomMatrix(b, 4)
	want := make([]float64, b)
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			want[r] += a[r*b+c] * x[c]
		}
	}
	mesh, _ := NewMeshMatVec(b, true)
	cube, _ := NewHypercubeMatVec(6)
	hm, _ := NewHypermeshMatVec(b, 2)
	for _, m := range []netsim.Machine[matvecEntry]{mesh, cube, hm} {
		res, err := MatVec(m, a, x)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for r := range want {
			if math.Abs(res.Y[r]-want[r]) > 1e-9 {
				t.Fatalf("%s: y[%d] = %v, want %v", m.Name(), r, res.Y[r], want[r])
			}
		}
	}
}

func TestMatVecStepCounts(t *testing.T) {
	// 2*log2(b) exchanges: 6 steps on hypercube/hypermesh for b=8,
	// 2*(b-1) = 14 on the torus.
	b := 8
	a := randomMatrix(b*b, 5)
	x := randomMatrix(b, 6)
	cube, _ := NewHypercubeMatVec(6)
	res, err := MatVec(cube, a, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 6 {
		t.Fatalf("hypercube matvec steps = %d, want 6", res.Steps)
	}
	hm, _ := NewHypermeshMatVec(b, 2)
	res, err = MatVec(hm, a, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 6 {
		t.Fatalf("hypermesh matvec steps = %d, want 6", res.Steps)
	}
	mesh, _ := NewMeshMatVec(b, true)
	res, err = MatVec(mesh, a, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 2*(b-1) {
		t.Fatalf("mesh matvec steps = %d, want %d", res.Steps, 2*(b-1))
	}
}

func TestMatVecValidates(t *testing.T) {
	hm, _ := NewHypermeshMatVec(8, 2)
	if _, err := MatVec(hm, make([]float64, 10), make([]float64, 8)); err == nil {
		t.Fatal("bad matrix size accepted")
	}
	if _, err := MatVec(hm, make([]float64, 64), make([]float64, 7)); err == nil {
		t.Fatal("bad vector size accepted")
	}
}

func directMatMul(a, b []float64, side int) []float64 {
	c := make([]float64, side*side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			for k := 0; k < side; k++ {
				c[i*side+j] += a[i*side+k] * b[k*side+j]
			}
		}
	}
	return c
}

func TestCannonMatchesDirect(t *testing.T) {
	side := 8
	n := side * side
	a := randomMatrix(n, 7)
	bm := randomMatrix(n, 8)
	want := directMatMul(a, bm, side)
	mesh, _ := NewMeshCannon(side, true)
	cube, _ := NewHypercubeCannon(6)
	hm, _ := NewHypermeshCannon(side, 2)
	for _, m := range []netsim.Machine[cannonEntry]{mesh, cube, hm} {
		res, err := Cannon(m, a, bm)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for i := range want {
			if math.Abs(res.C[i]-want[i]) > 1e-9 {
				t.Fatalf("%s: C[%d] = %v, want %v", m.Name(), i, res.C[i], want[i])
			}
		}
	}
}

func TestCannonIdentityMatrix(t *testing.T) {
	side := 4
	n := side * side
	a := randomMatrix(n, 9)
	id := make([]float64, n)
	for i := 0; i < side; i++ {
		id[i*side+i] = 1
	}
	hm, _ := NewHypermeshCannon(side, 2)
	res, err := Cannon(hm, a, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(res.C[i]-a[i]) > 1e-12 {
			t.Fatalf("A*I differs at %d", i)
		}
	}
}

func TestCannonShiftsAreCheapOnBothGridNetworks(t *testing.T) {
	// The main loop's unit rotations are dimension-local: one step each
	// on both the torus and the hypermesh — Cannon is the honest case
	// where the hypermesh has no communication advantage.
	side := 8
	a := randomMatrix(side*side, 10)
	bm := randomMatrix(side*side, 11)
	mesh, _ := NewMeshCannon(side, true)
	mres, err := Cannon(mesh, a, bm)
	if err != nil {
		t.Fatal(err)
	}
	hm, _ := NewHypermeshCannon(side, 2)
	hres, err := Cannon(hm, a, bm)
	if err != nil {
		t.Fatal(err)
	}
	wantShifts := 2 * (side - 1) // one A shift + one B shift per iteration
	if mres.ShiftSteps != wantShifts {
		t.Fatalf("mesh shift steps = %d, want %d", mres.ShiftSteps, wantShifts)
	}
	if hres.ShiftSteps != wantShifts {
		t.Fatalf("hypermesh shift steps = %d, want %d", hres.ShiftSteps, wantShifts)
	}
	// Skews: dimension-local single steps on the hypermesh.
	if hres.SkewSteps > 2 {
		t.Fatalf("hypermesh skew steps = %d, want <= 2", hres.SkewSteps)
	}
	if mres.SkewSteps <= hres.SkewSteps {
		t.Fatalf("mesh skews (%d) should exceed hypermesh (%d)", mres.SkewSteps, hres.SkewSteps)
	}
}

func TestCannonValidates(t *testing.T) {
	hm, _ := NewHypermeshCannon(4, 2)
	if _, err := Cannon(hm, make([]float64, 10), make([]float64, 16)); err == nil {
		t.Fatal("bad matrix size accepted")
	}
}

func BenchmarkCannon16(b *testing.B) {
	a := randomMatrix(256, 1)
	bm := randomMatrix(256, 2)
	for i := 0; i < b.N; i++ {
		hm, _ := NewHypermeshCannon(16, 2)
		if _, err := Cannon(hm, a, bm); err != nil {
			b.Fatal(err)
		}
	}
}
