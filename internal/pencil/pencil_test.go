package pencil

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster/wire"
	"repro/internal/fft"
	"repro/internal/obs"
	"repro/internal/plancache"
)

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// harness builds p in-process workers behind a loopback transport.
func harness(t *testing.T, p int, memCap int64) (Config, map[string]*Worker) {
	t.Helper()
	cache := plancache.New(64)
	workers := make(map[string]*Worker, p)
	names := make([]string, p)
	for i := 0; i < p; i++ {
		names[i] = fmt.Sprintf("w%d", i)
		workers[names[i]] = NewWorker(WorkerConfig{MemCap: memCap, Plans: cache})
	}
	return Config{
		Workers:   names,
		Transport: NewLocalTransport(true, workers),
		MemCap:    memCap,
	}, workers
}

func runShape(t *testing.T, cfg Config, shape Shape, inverse bool, input []complex128) ([]complex128, Stats) {
	t.Helper()
	cfg.Shape = shape
	cfg.Inverse = inverse
	out := make([]complex128, shape.Total())
	stats, err := Run(context.Background(), cfg,
		SliceSource{Data: input, Cols: shape.Cols},
		SliceSink{Data: out, Cols: shape.Cols})
	if err != nil {
		t.Fatalf("Run(%dx%d): %v", shape.Rows, shape.Cols, err)
	}
	return out, stats
}

func TestRunMatchesPlan2DBitIdentical(t *testing.T) {
	// Three shapes per the acceptance criteria: square power-of-two,
	// non-square, and non-power-of-two sides — all on 3 workers.
	shapes := [][2]int{{16, 16}, {8, 32}, {12, 20}}
	for _, s := range shapes {
		rows, cols := s[0], s[1]
		cfg, _ := harness(t, 3, 0)
		x := randComplex(rows*cols, int64(rows*1000+cols))
		got, stats := runShape(t, cfg, Shape2D(rows, cols), false, x)
		p, err := fft.NewPlan2D(rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, len(x))
		p.Transform(want, x)
		for i := range got {
			//fftlint:ignore floatcmp the acceptance criterion is bit-identical distributed vs single-node output
			if got[i] != want[i] {
				t.Fatalf("%dx%d: distributed output differs from Plan2D at %d: %v vs %v", rows, cols, i, got[i], want[i])
			}
		}
		if stats.Workers != 3 || stats.RPCs == 0 {
			t.Fatalf("stats %+v", stats)
		}

		// And the inverse direction round-trips through the same path.
		back, _ := runShape(t, cfg, Shape2D(rows, cols), true, got)
		winv := make([]complex128, len(x))
		p.Inverse(winv, got)
		for i := range back {
			//fftlint:ignore floatcmp inverse must match Plan2D.Inverse bit for bit
			if back[i] != winv[i] {
				t.Fatalf("%dx%d: distributed inverse differs at %d", rows, cols, i)
			}
		}
	}
}

func TestRun3DMatchesPlan3D(t *testing.T) {
	nx, ny, nz := 4, 6, 8
	cfg, _ := harness(t, 2, 0)
	x := randComplex(nx*ny*nz, 77)
	got, _ := runShape(t, cfg, Shape3D(nx, ny, nz), false, x)
	p, err := fft.NewPlan3D(nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(x))
	p.Transform(want, x)
	for i := range got {
		//fftlint:ignore floatcmp distributed 3D must match Plan3D bit for bit
		if got[i] != want[i] {
			t.Fatalf("3D distributed output differs from Plan3D at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestRunOutOfCore(t *testing.T) {
	// 64x64 complex = 64 KiB total, but each node may hold only 16 KiB
	// of band + scratch: the run must split into multiple waves and
	// still match Plan2D, with every worker's peak under the cap.
	rows, cols := 64, 64
	memCap := int64(16) << 10
	cfg, workers := harness(t, 2, memCap)
	x := randComplex(rows*cols, 5)
	got, stats := runShape(t, cfg, Shape2D(rows, cols), false, x)
	if stats.Waves < 2 {
		t.Fatalf("dataset 4x the cap ran in %d wave(s); want out-of-core waves", stats.Waves)
	}
	p, err := fft.NewPlan2D(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(x))
	p.Transform(want, x)
	for i := range got {
		//fftlint:ignore floatcmp out-of-core output must still be bit-identical
		if got[i] != want[i] {
			t.Fatalf("out-of-core output differs at %d", i)
		}
	}
	for name, w := range workers {
		st := w.Stats()
		if st.BytesPeak > memCap {
			t.Fatalf("worker %s peak %d exceeds cap %d", name, st.BytesPeak, memCap)
		}
		if st.BytesPeak == 0 {
			t.Fatalf("worker %s never held a band", name)
		}
		if st.OpenJobs != 0 || st.BytesInUse != 0 {
			t.Fatalf("worker %s leaked %d jobs / %d bytes", name, st.OpenJobs, st.BytesInUse)
		}
	}
}

func TestRunRejectsImpossibleCap(t *testing.T) {
	cfg, _ := harness(t, 2, 1<<10)
	cfg.Shape = Shape2D(1024, 1024) // one column band alone exceeds 1 KiB
	_, err := Run(context.Background(), cfg,
		SliceSource{Data: make([]complex128, 1024*1024), Cols: 1024},
		SliceSink{Data: make([]complex128, 1024*1024), Cols: 1024})
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("err = %v, want cap-sizing error", err)
	}
}

// killTransport fails every call to a given peer once armed, and can
// arm itself after a fixed number of successful deposits — the
// mid-transpose node kill.
type killTransport struct {
	inner Transport
	peer  string

	mu       sync.Mutex
	deposits int
	killAt   int
	dead     bool
}

func (k *killTransport) Call(ctx context.Context, peer string, req, resp *wire.PencilOp) (int64, int64, error) {
	k.mu.Lock()
	if req.Sub == wire.PencilDeposit {
		k.deposits++
		if k.deposits >= k.killAt {
			k.dead = true
		}
	}
	dead := k.dead && peer == k.peer
	k.mu.Unlock()
	if dead {
		return 0, 0, fmt.Errorf("connection refused (node %s down)", peer)
	}
	return k.inner.Call(ctx, peer, req, resp)
}

// countingSink fails the test if any write lands.
type countingSink struct {
	t      *testing.T
	writes int
}

func (c *countingSink) WriteBand(rowLo, nrows, colLo, ncols int, data []complex128) error {
	c.writes++
	return nil
}

func TestRunNodeKillMidTranspose(t *testing.T) {
	cfg, _ := harness(t, 3, 0)
	kt := &killTransport{inner: cfg.Transport, peer: "w1", killAt: 2}
	cfg.Transport = kt
	cfg.Shape = Shape2D(16, 16)
	sink := &countingSink{t: t}
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), cfg,
			SliceSource{Data: randComplex(256, 9), Cols: 16}, sink)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run succeeded despite a dead node")
		}
		if !strings.Contains(err.Error(), "w1") {
			t.Fatalf("error does not name the dead peer: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung after node kill")
	}
	if sink.writes != 0 {
		t.Fatalf("sink saw %d writes from a failed run; want 0", sink.writes)
	}
}

func TestRunSpansReconcileWithMetrics(t *testing.T) {
	cfg, _ := harness(t, 2, 0)
	m := &Metrics{}
	cfg.Metrics = m
	cfg.Shape = Shape2D(8, 32)
	tr := obs.New()
	ctx := obs.WithTracer(context.Background(), tr)
	x := randComplex(8*32, 11)
	out := make([]complex128, len(x))
	stats, err := Run(ctx, cfg,
		SliceSource{Data: x, Cols: 32}, SliceSink{Data: out, Cols: 32})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	roll := obs.RollupOf(tr.Snapshot())
	if roll.BytesSent != snap.WireBytesSent || roll.BytesRecv != snap.WireBytesRecv {
		t.Fatalf("span rollup (%d, %d) does not reconcile with metrics (%d, %d)",
			roll.BytesSent, roll.BytesRecv, snap.WireBytesSent, snap.WireBytesRecv)
	}
	if stats.WireBytesSent != snap.WireBytesSent || stats.WireBytesRecv != snap.WireBytesRecv {
		t.Fatalf("stats bytes (%d, %d) vs metrics (%d, %d)",
			stats.WireBytesSent, stats.WireBytesRecv, snap.WireBytesSent, snap.WireBytesRecv)
	}
	if stats.CommFloorBytes <= 0 || stats.RooflineRatio < 1 {
		t.Fatalf("floor %d, ratio %g; want positive floor and ratio >= 1",
			stats.CommFloorBytes, stats.RooflineRatio)
	}
	if snap.RPCs() != stats.RPCs {
		t.Fatalf("metrics RPCs %d vs stats %d", snap.RPCs(), stats.RPCs)
	}
	if snap.Runs2D != 1 || snap.Errors != 0 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestWorkerRejectsOverCapAndExpires(t *testing.T) {
	w := NewWorker(WorkerConfig{MemCap: 4 << 10, JobTTL: 10 * time.Millisecond})
	open := func(job uint64, rows, colN int) error {
		op := &wire.PencilOp{Sub: wire.PencilOpen, Dims: 2, Rows: uint32(rows), Cols: 64, ColN: uint32(colN), Job: job}
		var resp wire.PencilOp
		return w.ServePencil(context.Background(), op, &resp)
	}
	// 16*16*(15+1) = 4096 bytes: exactly the cap.
	if err := open(1, 16, 15); err != nil {
		t.Fatalf("open at cap: %v", err)
	}
	if err := open(2, 16, 15); err == nil {
		t.Fatal("second band accepted over cap")
	}
	st := w.Stats()
	if st.Rejected != 1 || st.BytesPeak != 4096 {
		t.Fatalf("stats %+v", st)
	}
	// After TTL the orphaned band is reclaimed by the next op's sweep.
	time.Sleep(20 * time.Millisecond)
	if err := open(3, 16, 15); err != nil {
		t.Fatalf("open after expiry: %v", err)
	}
	st = w.Stats()
	if st.ExpiredJobs != 1 || st.OpenJobs != 1 {
		t.Fatalf("stats after expiry %+v", st)
	}
}

// TestOpenRejectsOverflowShape — hostile uint32 shape fields used to
// wrap the 16*rows*(colN+1) byte estimate to 0, slip past the cap check
// and panic the make (crashing the serving conn loop). The open must
// reject instead, charging nothing.
func TestOpenRejectsOverflowShape(t *testing.T) {
	w := NewWorker(WorkerConfig{MemCap: 1 << 20})
	op := &wire.PencilOp{Sub: wire.PencilOpen, Dims: 2, Rows: 1 << 31, Cols: 1, ColN: 1<<31 - 1, Job: 7}
	var resp wire.PencilOp
	err := w.ServePencil(context.Background(), op, &resp)
	if err == nil {
		t.Fatal("overflow-sized open accepted")
	}
	if !IsBandCapMsg(err.Error()) {
		t.Fatalf("overflow rejection not classified as band-cap: %v", err)
	}
	if st := w.Stats(); st.OpenJobs != 0 || st.BytesInUse != 0 || st.Rejected != 1 {
		t.Fatalf("stats after overflow rejection: %+v", st)
	}
}

// TestBusyMsgClassification pins the message-string classification the
// serving layer and the coordinator's cap retry rely on — remote
// errors cross the wire as bare strings.
func TestBusyMsgClassification(t *testing.T) {
	cases := []struct {
		msg       string
		busy, cap bool
	}{
		{"pencil busy: 64 jobs already open", true, false},
		{"pencil busy: band needs 4096 bytes, 0 of 1024 in use", true, true},
		{"pencil busy: band 8x512 cannot fit cap 1024", true, true},
		{"pencil busy: job 9 expired or not open", true, false},
		{"pencil: shape 0x4 has a side < 1", false, false},
		{"pencil: dims 4 not 2 or 3", false, false},
		// Wrapped in coordinator and transport context, as the server sees it.
		{"pencil: open on w1: remote error from w1: pencil busy: band needs 1 bytes, 0 of 0 in use", true, true},
	}
	for _, tc := range cases {
		if got := IsBusyMsg(tc.msg); got != tc.busy {
			t.Errorf("IsBusyMsg(%q) = %v, want %v", tc.msg, got, tc.busy)
		}
		if got := IsBandCapMsg(tc.msg); got != tc.cap {
			t.Errorf("IsBandCapMsg(%q) = %v, want %v", tc.msg, got, tc.cap)
		}
	}
}

// TestRunNarrowsBandsForSmallerPeerCap — the coordinator plans bands
// against its own cap, but here the worker was started with a cap that
// holds only a 2-column band (16*8*(2+1) = 384 bytes <= 400). Each
// wider open is rejected; the run must narrow bands, finish, and stay
// bit-identical to Plan2D.
func TestRunNarrowsBandsForSmallerPeerCap(t *testing.T) {
	rows, cols := 8, 16
	cache := plancache.New(16)
	workers := map[string]*Worker{"w0": NewWorker(WorkerConfig{MemCap: 400, Plans: cache})}
	m := &Metrics{}
	cfg := Config{
		Shape:     Shape2D(rows, cols),
		Workers:   []string{"w0"},
		Transport: NewLocalTransport(true, workers),
		MemCap:    DefaultMemCap,
		Metrics:   m,
	}
	x := randComplex(rows*cols, 21)
	out := make([]complex128, len(x))
	stats, err := Run(context.Background(), cfg,
		SliceSource{Data: x, Cols: cols}, SliceSink{Data: out, Cols: cols})
	if err != nil {
		t.Fatalf("Run against a smaller peer cap: %v", err)
	}
	if stats.CapRetries == 0 {
		t.Fatalf("run never narrowed bands: %+v", stats)
	}
	if stats.BandCols > 2 {
		t.Fatalf("final band width %d wider than the peer cap holds", stats.BandCols)
	}
	snap := m.Snapshot()
	if snap.CapRetries != int64(stats.CapRetries) || snap.Errors != 0 || snap.Runs2D != 1 {
		t.Fatalf("metrics %+v vs stats %+v", snap, stats)
	}
	p, err := fft.NewPlan2D(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(x))
	p.Transform(want, x)
	for i := range out {
		//fftlint:ignore floatcmp a cap-narrowed retry must still match Plan2D bit for bit
		if out[i] != want[i] {
			t.Fatalf("cap-narrowed output differs at %d: %v vs %v", i, out[i], want[i])
		}
	}
	if st := workers["w0"].Stats(); st.Rejected == 0 || st.OpenJobs != 0 || st.BytesInUse != 0 {
		t.Fatalf("worker stats after narrowed run: %+v", st)
	}
}

// TestJobSeqSeededNonZero — workers key band state by job ID alone, so
// coordinators on different nodes must mint from independent random
// offsets, not a shared zero origin.
func TestJobSeqSeededNonZero(t *testing.T) {
	if jobSeq.Load() == 0 {
		t.Fatal("jobSeq starts at 0; job IDs must start at a per-process random offset")
	}
}

func TestSplitRows(t *testing.T) {
	for _, tc := range []struct{ rows, p int }{{10, 3}, {3, 5}, {16, 4}, {1, 1}} {
		slabs := SplitRows(tc.rows, tc.p)
		if len(slabs) != tc.p {
			t.Fatalf("SplitRows(%d,%d) len %d", tc.rows, tc.p, len(slabs))
		}
		lo, total := 0, 0
		for _, s := range slabs {
			if s.Lo != lo || s.Hi < s.Lo {
				t.Fatalf("SplitRows(%d,%d) = %v not contiguous", tc.rows, tc.p, slabs)
			}
			total += s.Hi - s.Lo
			lo = s.Hi
		}
		if total != tc.rows {
			t.Fatalf("SplitRows(%d,%d) covers %d rows", tc.rows, tc.p, total)
		}
	}
}

func TestLocalTransportDirectMode(t *testing.T) {
	// Without loopback, calls dispatch in-process and report zero wire
	// bytes — so the comm floor stays zero too.
	cfg, _ := harness(t, 1, 0)
	cfg.Transport = NewLocalTransport(false, cfg.Transport.(*LocalTransport).Workers)
	x := randComplex(16*16, 3)
	got, stats := runShape(t, cfg, Shape2D(16, 16), false, x)
	p, _ := fft.NewPlan2D(16, 16)
	want := make([]complex128, len(x))
	p.Transform(want, x)
	for i := range got {
		//fftlint:ignore floatcmp single-worker direct mode must still match Plan2D bit for bit
		if got[i] != want[i] {
			t.Fatalf("direct-mode output differs at %d", i)
		}
	}
	if stats.WireBytesSent != 0 || stats.WireBytesRecv != 0 || stats.CommFloorBytes != 0 {
		t.Fatalf("direct mode reported wire traffic: %+v", stats)
	}
}
