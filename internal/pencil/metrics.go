package pencil

import (
	"sync/atomic"

	"repro/internal/cluster/wire"
)

// Metrics counts pencil activity for one process: coordinator-side run
// and wire totals plus worker-side job/byte gauges. All fields are
// atomics, safe for concurrent runs; the server exports a snapshot
// under /metrics as the fftd_pencil_* Prometheus families.
//
// Wire byte totals are added at exactly the points the coordinator's
// spans call AddBytes, with the same values — so a traced run's span
// rollup reconciles exactly against the metrics deltas (pinned by
// TestRunSpansReconcileWithMetrics).
type Metrics struct {
	runs2D     atomic.Int64
	runs3D     atomic.Int64
	errors     atomic.Int64
	waves      atomic.Int64
	capRetries atomic.Int64

	rpcOpen    atomic.Int64
	rpcRows    atomic.Int64
	rpcDeposit atomic.Int64
	rpcColFFT  atomic.Int64
	rpcRead    atomic.Int64
	rpcClose   atomic.Int64

	wireSent   atomic.Int64
	wireRecv   atomic.Int64
	floorBytes atomic.Int64
}

// MetricsSnapshot is a point-in-time copy of the pencil counters.
type MetricsSnapshot struct {
	Runs2D     int64 `json:"runs_2d"`
	Runs3D     int64 `json:"runs_3d"`
	Errors     int64 `json:"errors"`
	Waves      int64 `json:"waves"`
	CapRetries int64 `json:"cap_retries"`

	RPCsOpen    int64 `json:"rpcs_open"`
	RPCsRows    int64 `json:"rpcs_rows"`
	RPCsDeposit int64 `json:"rpcs_deposit"`
	RPCsColFFT  int64 `json:"rpcs_colfft"`
	RPCsRead    int64 `json:"rpcs_read"`
	RPCsClose   int64 `json:"rpcs_close"`

	WireBytesSent  int64 `json:"wire_bytes_sent"`
	WireBytesRecv  int64 `json:"wire_bytes_recv"`
	CommFloorBytes int64 `json:"comm_floor_bytes"`
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		Runs2D:         m.runs2D.Load(),
		Runs3D:         m.runs3D.Load(),
		Errors:         m.errors.Load(),
		Waves:          m.waves.Load(),
		CapRetries:     m.capRetries.Load(),
		RPCsOpen:       m.rpcOpen.Load(),
		RPCsRows:       m.rpcRows.Load(),
		RPCsDeposit:    m.rpcDeposit.Load(),
		RPCsColFFT:     m.rpcColFFT.Load(),
		RPCsRead:       m.rpcRead.Load(),
		RPCsClose:      m.rpcClose.Load(),
		WireBytesSent:  m.wireSent.Load(),
		WireBytesRecv:  m.wireRecv.Load(),
		CommFloorBytes: m.floorBytes.Load(),
	}
}

// RPCs sums the per-stage RPC counters.
func (s MetricsSnapshot) RPCs() int64 {
	return s.RPCsOpen + s.RPCsRows + s.RPCsDeposit + s.RPCsColFFT + s.RPCsRead + s.RPCsClose
}

// countRPC bumps the per-stage counter for sub.
func (m *Metrics) countRPC(sub uint8) {
	if m == nil {
		return
	}
	switch sub {
	case wire.PencilOpen:
		m.rpcOpen.Add(1)
	case wire.PencilRows:
		m.rpcRows.Add(1)
	case wire.PencilDeposit:
		m.rpcDeposit.Add(1)
	case wire.PencilColFFT:
		m.rpcColFFT.Add(1)
	case wire.PencilRead:
		m.rpcRead.Add(1)
	case wire.PencilClose:
		m.rpcClose.Add(1)
	}
}

func (m *Metrics) addWire(sent, recv, floor int64) {
	if m == nil {
		return
	}
	m.wireSent.Add(sent)
	m.wireRecv.Add(recv)
	m.floorBytes.Add(floor)
}
