// Package pencil executes one large 2D or 3D FFT partitioned across
// cluster nodes — the pencil decomposition: every node row-transforms a
// contiguous slab of rows with the existing split-radix kernels, the
// row-transformed data is redistributed so each node owns a contiguous
// band of full-height columns (the distributed transpose — the stage
// the paper's bisection-bandwidth bound prices), each node runs the
// column transforms over its band, and the result streams back to the
// caller's row-major layout.
//
// The package splits into a Worker (the per-node executor serving the
// wire sub-operations) and a coordinator (Run) that schedules the
// stages over a Transport. Out-of-core operation falls out of the
// schedule: when the dataset exceeds the per-node memory cap, the
// coordinator shrinks the column bands until one band plus scratch fits
// the cap and runs the bands in waves, re-streaming the source rows for
// each wave — peak per-node memory stays under the cap at the price of
// re-reading (and re-row-transforming) the input once per wave.
//
// Single-node and distributed execution are bit-identical to fft.Plan2D
// by construction: both run the same plans (built by the same
// constructors) over the same per-element operation order, differing
// only in which machine holds each pencil.
package pencil

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster/wire"
	"repro/internal/fft"
)

// Worker rejections that depend on load or elapsed time — the memory
// cap, the job limit, a TTL-reclaimed band — carry busyPrefix so they
// can be classified from the message alone: remote errors cross the
// wire as bare strings, and a transient rejection must not be reported
// to HTTP callers as their own error. bandCapNeedle marks the subset
// caused by the band memory cap specifically — the rejections a
// coordinator can cure by re-planning with narrower column bands.
const (
	busyPrefix    = "pencil busy:"
	bandCapNeedle = busyPrefix + " band"
)

// IsBusyMsg reports whether msg (a worker error, possibly wrapped in
// transport context) is a transient capacity or reclaimed-state
// rejection — retryable server-side, not a caller error.
func IsBusyMsg(msg string) bool { return strings.Contains(msg, busyPrefix) }

// IsBandCapMsg reports whether msg is a band memory-cap rejection —
// the case Run retries with narrower bands.
func IsBandCapMsg(msg string) bool { return strings.Contains(msg, bandCapNeedle) }

// PlanSource supplies the 1D and 2D plans the worker transforms with.
// *plancache.Cache satisfies it, so a node's pencil worker shares the
// serving plan cache.
type PlanSource interface {
	AnyPlan(n int) (*fft.AnyPlan, error)
	Plan2D(rows, cols int) (*fft.Plan2D, error)
}

// freshPlans is the fallback PlanSource building uncached plans.
type freshPlans struct{}

func (freshPlans) AnyPlan(n int) (*fft.AnyPlan, error)        { return fft.NewAnyPlan(n) }
func (freshPlans) Plan2D(rows, cols int) (*fft.Plan2D, error) { return fft.NewPlan2D(rows, cols) }

// WorkerConfig bounds one node's pencil executor.
type WorkerConfig struct {
	// MemCap bounds the bytes of band + scratch buffers held across all
	// open jobs. 0 means DefaultMemCap.
	MemCap int64
	// MaxJobs bounds concurrently open jobs. 0 means 64.
	MaxJobs int
	// JobTTL reclaims bands whose coordinator died without closing
	// them. 0 means 2 minutes.
	JobTTL time.Duration
	// Plans supplies transform plans; nil builds fresh plans per op.
	Plans PlanSource
}

// DefaultMemCap is the per-node pencil memory cap when none is
// configured: 256 MiB of band + scratch.
const DefaultMemCap = int64(256) << 20

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.MemCap <= 0 {
		c.MemCap = DefaultMemCap
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 2 * time.Minute
	}
	if c.Plans == nil {
		c.Plans = freshPlans{}
	}
	return c
}

// wjob is one open column band.
type wjob struct {
	mu      sync.Mutex
	rows    int
	colN    int
	need    int64 // bytes charged against the cap
	band    []complex128
	scratch []complex128
	expires time.Time
}

// Worker serves the pencil wire sub-operations on one node. It is safe
// for concurrent use; distinct jobs proceed independently.
type Worker struct {
	cfg WorkerConfig

	mu    sync.Mutex
	jobs  map[uint64]*wjob
	inUse int64
	peak  int64

	opens, expired, rejected int64 // guarded by mu
}

// NewWorker creates a pencil executor with cfg's bounds.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	return &Worker{cfg: cfg, jobs: make(map[uint64]*wjob)}
}

// WorkerStats is a snapshot of one worker's job and memory state.
type WorkerStats struct {
	OpenJobs    int   `json:"open_jobs"`
	BytesInUse  int64 `json:"bytes_in_use"`
	BytesPeak   int64 `json:"bytes_peak"`
	MemCap      int64 `json:"mem_cap"`
	Opens       int64 `json:"opens"`
	ExpiredJobs int64 `json:"expired_jobs"`
	Rejected    int64 `json:"rejected"`
}

// Stats snapshots the worker.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStats{
		OpenJobs:    len(w.jobs),
		BytesInUse:  w.inUse,
		BytesPeak:   w.peak,
		MemCap:      w.cfg.MemCap,
		Opens:       w.opens,
		ExpiredJobs: w.expired,
		Rejected:    w.rejected,
	}
}

// sweepLocked drops expired jobs. Called with w.mu held on every
// stateful op, so an orphaned band cannot outlive its TTL by more than
// one op's arrival — no background goroutine needed.
func (w *Worker) sweepLocked(now time.Time) {
	for id, j := range w.jobs {
		if now.After(j.expires) {
			delete(w.jobs, id)
			w.inUse -= j.need
			w.expired++
		}
	}
}

// ServePencil executes one pencil sub-operation, filling resp with the
// echoed sub-header and any result samples (which may alias op.Data).
// An error return means the op did nothing durable; the transport layer
// reports it to the coordinator as a FlagError response.
func (w *Worker) ServePencil(ctx context.Context, op, resp *wire.PencilOp) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	*resp = wire.PencilOp{
		Sub: op.Sub, Dims: op.Dims,
		Rows: op.Rows, Cols: op.Cols, PlaneRows: op.PlaneRows,
		RowLo: op.RowLo, RowN: op.RowN, ColLo: op.ColLo, ColN: op.ColN,
		Job: op.Job, Inverse: op.Inverse,
		Data: resp.Data[:0],
	}
	switch op.Sub {
	case wire.PencilOpen:
		return w.open(op)
	case wire.PencilRows:
		return w.rows(op, resp)
	case wire.PencilDeposit:
		return w.deposit(op)
	case wire.PencilColFFT:
		return w.colFFT(op)
	case wire.PencilRead:
		return w.read(op, resp)
	case wire.PencilClose:
		return w.close(op)
	default:
		return fmt.Errorf("pencil: unknown sub-op %d", op.Sub)
	}
}

// checkShape validates the sub-header's shape fields shared by all ops.
func checkShape(op *wire.PencilOp) (rows, cols int, err error) {
	rows, cols = int(op.Rows), int(op.Cols)
	if rows < 1 || cols < 1 {
		return 0, 0, fmt.Errorf("pencil: shape %dx%d has a side < 1", rows, cols)
	}
	if op.Dims == 3 {
		pr := int(op.PlaneRows)
		if pr < 1 || cols%pr != 0 {
			return 0, 0, fmt.Errorf("pencil: 3D plane rows %d does not divide cols %d", pr, cols)
		}
	} else if op.Dims != 2 {
		return 0, 0, fmt.Errorf("pencil: dims %d not 2 or 3", op.Dims)
	}
	return rows, cols, nil
}

// open allocates the band for a new job.
func (w *Worker) open(op *wire.PencilOp) error {
	rows, _, err := checkShape(op)
	if err != nil {
		return err
	}
	colN := int(op.ColN)
	if colN < 1 {
		return fmt.Errorf("pencil: open with band width %d", colN)
	}
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sweepLocked(now)
	if _, ok := w.jobs[op.Job]; ok {
		return fmt.Errorf("pencil: job %d already open", op.Job)
	}
	if len(w.jobs) >= w.cfg.MaxJobs {
		w.rejected++
		return fmt.Errorf("%s %d jobs already open", busyPrefix, len(w.jobs))
	}
	// The band plus the column-FFT scratch, both complex128, costs
	// 16*rows*(colN+1) bytes. Rows and ColN arrive as untrusted uint32
	// wire fields, so bound rows by division before multiplying: the
	// straight product wraps int64 for hostile shapes (e.g. Rows=2^31,
	// ColN=2^31-1 gives 0), slipping past the cap check into a make
	// that panics the serving process.
	if int64(rows) > w.cfg.MemCap/16/int64(colN+1) {
		w.rejected++
		return fmt.Errorf("%s band %dx%d cannot fit cap %d", busyPrefix, rows, colN, w.cfg.MemCap)
	}
	need := int64(16) * int64(rows) * int64(colN+1)
	if w.inUse+need > w.cfg.MemCap {
		w.rejected++
		return fmt.Errorf("%s band needs %d bytes, %d of %d in use", busyPrefix, need, w.inUse, w.cfg.MemCap)
	}
	w.jobs[op.Job] = &wjob{
		rows:    rows,
		colN:    colN,
		need:    need,
		band:    make([]complex128, rows*colN),
		scratch: make([]complex128, rows),
		expires: now.Add(w.cfg.JobTTL),
	}
	w.inUse += need
	w.opens++
	if w.inUse > w.peak {
		w.peak = w.inUse
	}
	return nil
}

// lookup fetches an open job and refreshes its TTL.
func (w *Worker) lookup(id uint64) (*wjob, error) {
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sweepLocked(now)
	j, ok := w.jobs[id]
	if !ok {
		// Most often the TTL sweep reclaimed the band while the
		// coordinator stalled — transient state, hence busy-classified.
		return nil, fmt.Errorf("%s job %d expired or not open", busyPrefix, id)
	}
	j.expires = now.Add(w.cfg.JobTTL)
	return j, nil
}

// rows row-transforms the carried slab in place: RowN full rows for 2D,
// RowN x-planes (each PlaneRows x Cols/PlaneRows) for 3D. Stateless —
// it touches no job and charges nothing against the cap beyond the
// frame the transport already holds.
func (w *Worker) rows(op, resp *wire.PencilOp) error {
	_, cols, err := checkShape(op)
	if err != nil {
		return err
	}
	n := int(op.RowN)
	if n < 1 || len(op.Data) != n*cols {
		return fmt.Errorf("pencil: rows op carries %d samples, want %d x %d", len(op.Data), n, cols)
	}
	if op.Dims == 3 {
		pr := int(op.PlaneRows)
		p2, err := w.cfg.Plans.Plan2D(pr, cols/pr)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			plane := op.Data[i*cols : (i+1)*cols]
			if op.Inverse {
				p2.Inverse(plane, plane)
			} else {
				p2.Transform(plane, plane)
			}
		}
	} else {
		rowT, err := w.cfg.Plans.AnyPlan(cols)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			row := op.Data[i*cols : (i+1)*cols]
			if op.Inverse {
				rowT.Inverse(row, row)
			} else {
				rowT.Transform(row, row)
			}
		}
	}
	resp.Data = op.Data
	return nil
}

// deposit stores a row-transformed shard into the open band — the
// receive half of the distributed transpose.
func (w *Worker) deposit(op *wire.PencilOp) error {
	j, err := w.lookup(op.Job)
	if err != nil {
		return err
	}
	rowLo, rowN, colN := int(op.RowLo), int(op.RowN), int(op.ColN)
	if colN != j.colN {
		return fmt.Errorf("pencil: deposit width %d, band width %d", colN, j.colN)
	}
	if rowN < 1 || rowLo < 0 || rowLo+rowN > j.rows {
		return fmt.Errorf("pencil: deposit rows [%d,%d) outside band height %d", rowLo, rowLo+rowN, j.rows)
	}
	if len(op.Data) != rowN*colN {
		return fmt.Errorf("pencil: deposit carries %d samples, want %d", len(op.Data), rowN*colN)
	}
	j.mu.Lock()
	copy(j.band[rowLo*colN:(rowLo+rowN)*colN], op.Data)
	j.mu.Unlock()
	return nil
}

// colFFT runs the length-rows column transforms over the band in place.
func (w *Worker) colFFT(op *wire.PencilOp) error {
	j, err := w.lookup(op.Job)
	if err != nil {
		return err
	}
	colT, err := w.cfg.Plans.AnyPlan(j.rows)
	if err != nil {
		return err
	}
	j.mu.Lock()
	fft.TransformColumns(colT, j.band, j.rows, j.colN, op.Inverse, j.scratch)
	j.mu.Unlock()
	return nil
}

// read returns rows [RowLo, RowLo+RowN) of the band — the gather half
// of the inverse transpose.
func (w *Worker) read(op, resp *wire.PencilOp) error {
	j, err := w.lookup(op.Job)
	if err != nil {
		return err
	}
	rowLo, rowN := int(op.RowLo), int(op.RowN)
	if rowN < 1 || rowLo < 0 || rowLo+rowN > j.rows {
		return fmt.Errorf("pencil: read rows [%d,%d) outside band height %d", rowLo, rowLo+rowN, j.rows)
	}
	j.mu.Lock()
	resp.Data = append(resp.Data[:0], j.band[rowLo*j.colN:(rowLo+rowN)*j.colN]...)
	j.mu.Unlock()
	resp.ColN = uint32(j.colN)
	return nil
}

// close frees the band.
func (w *Worker) close(op *wire.PencilOp) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	j, ok := w.jobs[op.Job]
	if !ok {
		return fmt.Errorf("%s job %d expired or not open", busyPrefix, op.Job)
	}
	delete(w.jobs, op.Job)
	w.inUse -= j.need
	return nil
}
