package pencil

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"repro/internal/cluster/wire"
	"repro/internal/obs"
	"repro/internal/obs/roofline"
)

// Shape is the flattened 2D view of the transform: Rows x Cols
// row-major. A 3D nx x ny x nz volume flattens to Rows = nx,
// Cols = ny*nz with PlaneRows = ny, so every "row" is one x-plane and
// the same schedule (and wire ops) serves both ranks; PlaneRows is 0
// for plain 2D.
type Shape struct {
	Rows      int
	Cols      int
	PlaneRows int
}

// Shape2D describes a rows x cols transform.
func Shape2D(rows, cols int) Shape { return Shape{Rows: rows, Cols: cols} }

// Shape3D describes an nx x ny x nz transform.
func Shape3D(nx, ny, nz int) Shape { return Shape{Rows: nx, Cols: ny * nz, PlaneRows: ny} }

// Dims returns 2 or 3.
func (s Shape) Dims() int {
	if s.PlaneRows > 0 {
		return 3
	}
	return 2
}

// Total returns the sample count.
func (s Shape) Total() int { return s.Rows * s.Cols }

func (s Shape) validate() error {
	if s.Rows < 1 || s.Cols < 1 {
		return fmt.Errorf("pencil: shape %dx%d has a side < 1", s.Rows, s.Cols)
	}
	if s.PlaneRows > 0 && s.Cols%s.PlaneRows != 0 {
		return fmt.Errorf("pencil: plane rows %d does not divide cols %d", s.PlaneRows, s.Cols)
	}
	return nil
}

// Source streams the input: ReadRows fills dst (n*Cols samples) with
// row-major rows [rowLo, rowLo+n). Out-of-core runs call it more than
// once per row range — a Source must be re-readable.
type Source interface {
	ReadRows(rowLo, n int, dst []complex128) error
}

// Sink receives the output: WriteBand stores the nrows x ncols
// row-major shard covering rows [rowLo, rowLo+nrows) of columns
// [colLo, colLo+ncols). The coordinator never writes the same cell
// twice within one attempt, and never interleaves partial new data
// into a cell: writes for a wave start only after the whole wave
// succeeded, and a run re-planned after a peer capacity rejection
// (Stats.CapRetries) rewrites cells from the abandoned attempt with
// identical values.
type Sink interface {
	WriteBand(rowLo, nrows, colLo, ncols int, data []complex128) error
}

// SliceSource serves rows out of a full in-memory row-major array.
type SliceSource struct {
	Data []complex128
	Cols int
}

// ReadRows implements Source.
func (s SliceSource) ReadRows(rowLo, n int, dst []complex128) error {
	lo, hi := rowLo*s.Cols, (rowLo+n)*s.Cols
	if lo < 0 || hi > len(s.Data) || len(dst) != hi-lo {
		return fmt.Errorf("pencil: source rows [%d,%d) out of range", rowLo, rowLo+n)
	}
	copy(dst, s.Data[lo:hi])
	return nil
}

// SliceSink scatters band shards into a full in-memory row-major array.
type SliceSink struct {
	Data []complex128
	Cols int
}

// WriteBand implements Sink.
func (s SliceSink) WriteBand(rowLo, nrows, colLo, ncols int, data []complex128) error {
	if len(data) != nrows*ncols || colLo < 0 || colLo+ncols > s.Cols ||
		rowLo < 0 || (rowLo+nrows)*s.Cols > len(s.Data) {
		return fmt.Errorf("pencil: sink band [%d,%d)x[%d,%d) out of range", rowLo, rowLo+nrows, colLo, colLo+ncols)
	}
	for r := 0; r < nrows; r++ {
		copy(s.Data[(rowLo+r)*s.Cols+colLo:], data[r*ncols:(r+1)*ncols])
	}
	return nil
}

// Transport delivers one pencil sub-operation to a peer and fills resp
// with its answer, returning the wire bytes it moved each direction —
// whole frames, headers included; zero for calls served in-process.
// A FlagError response surfaces as a non-nil error.
type Transport interface {
	Call(ctx context.Context, peer string, req, resp *wire.PencilOp) (sent, recv int64, err error)
}

// Config parameterizes one distributed run.
type Config struct {
	Shape   Shape
	Inverse bool
	// Workers are the transport addresses sharing the run, in schedule
	// order; at least one.
	Workers []string
	// Transport delivers the sub-operations.
	Transport Transport
	// MemCap bounds per-node band memory and the coordinator's own
	// streaming buffers. 0 means DefaultMemCap. Datasets larger than
	// the cap run out of core (see package comment).
	MemCap int64
	// Metrics, when non-nil, accumulates run counters.
	Metrics *Metrics
}

// Stats describes one completed run.
type Stats struct {
	Workers        int     `json:"workers"`
	Bands          int     `json:"bands"`
	Waves          int     `json:"waves"`
	ChunkRows      int     `json:"chunk_rows"`
	BandCols       int     `json:"band_cols"`
	RPCs           int64   `json:"rpcs"`
	WireBytesSent  int64   `json:"wire_bytes_sent"`
	WireBytesRecv  int64   `json:"wire_bytes_recv"`
	CommFloorBytes int64   `json:"comm_floor_bytes"`
	RooflineRatio  float64 `json:"roofline_ratio"`
	// CapRetries counts re-plans with narrower column bands after a
	// worker rejected an open on its memory cap (a peer configured with
	// a smaller cap than this coordinator's).
	CapRetries int `json:"cap_retries,omitempty"`
}

// jobSeq mints job IDs. Workers key band state by job ID alone, so IDs
// must be unique across every coordinator that might share a worker,
// not just within one process: every node serves /v1/fft2d, and two
// nodes coordinating concurrently with aligned counters (e.g. after a
// restart) would collide on "job already open". The sequence therefore
// starts at a per-process random offset instead of 0.
var jobSeq atomic.Uint64

func init() { jobSeq.Store(rand.Uint64()) }

// run carries one run's schedule and accounting.
type run struct {
	cfg       Config
	rows      int
	cols      int
	chunkRows int
	bandCols  int
	bands     int
	waves     int

	chunk []complex128 // chunkRows x cols streaming buffer
	shard []complex128 // chunkRows x bandCols transpose shard

	span  *obs.Span // run root; nil when untraced
	stats Stats
}

// Run executes one distributed pencil FFT: src streams in row-major,
// the transformed array streams out through sink. On error nothing has
// been written to sink and every reachable worker band has been closed.
func Run(ctx context.Context, cfg Config, src Source, sink Sink) (Stats, error) {
	if err := cfg.Shape.validate(); err != nil {
		return Stats{}, err
	}
	if len(cfg.Workers) == 0 {
		return Stats{}, errors.New("pencil: no workers")
	}
	if cfg.Transport == nil {
		return Stats{}, errors.New("pencil: no transport")
	}
	if cfg.MemCap <= 0 {
		cfg.MemCap = DefaultMemCap
	}
	r, err := plan(cfg, 0)
	if err != nil {
		return Stats{}, err
	}
	if cfg.Metrics != nil {
		if cfg.Shape.Dims() == 3 {
			cfg.Metrics.runs3D.Add(1)
		} else {
			cfg.Metrics.runs2D.Add(1)
		}
	}
	// plan sizes column bands against this coordinator's own cap, but a
	// peer started with a smaller cap rejects the open. Those
	// rejections are curable: re-plan with bands narrowed to half and
	// re-run until they fit the smallest peer or cannot narrow further.
	// A retried attempt rewrites sink cells from the abandoned one with
	// identical values (same plans, same per-element order), so the
	// retry is invisible in the output.
	retries := 0
	for {
		r.stats.CapRetries = retries
		err := r.runOnce(ctx, src, sink)
		if err == nil {
			return r.stats, nil
		}
		if IsBandCapMsg(err.Error()) && r.bandCols > 1 {
			if nr, perr := plan(cfg, r.bandCols/2); perr == nil {
				r = nr
				retries++
				if cfg.Metrics != nil {
					cfg.Metrics.capRetries.Add(1)
				}
				continue
			}
		}
		if cfg.Metrics != nil {
			cfg.Metrics.errors.Add(1)
		}
		return Stats{}, err
	}
}

// runOnce executes one planned attempt end to end, filling r.stats.
func (r *run) runOnce(ctx context.Context, src Source, sink Sink) error {
	sp := obs.StartChild(ctx, "pencil.run").SetCat(obs.CatCluster).
		SetDetail(fmt.Sprintf("shape=%dx%d dims=%d workers=%d bands=%d waves=%d retries=%d",
			r.rows, r.cols, r.cfg.Shape.Dims(), len(r.cfg.Workers), r.bands, r.waves, r.stats.CapRetries))
	defer sp.End()
	r.span = sp
	ctx = obs.WithSpan(ctx, sp)
	if err := r.execute(ctx, src, sink); err != nil {
		sp.SetDetail("error: " + err.Error())
		return err
	}
	r.stats.Workers = len(r.cfg.Workers)
	r.stats.Bands = r.bands
	r.stats.Waves = r.waves
	r.stats.ChunkRows = r.chunkRows
	r.stats.BandCols = r.bandCols
	r.stats.RooflineRatio = roofline.Ratio(
		float64(r.stats.WireBytesSent+r.stats.WireBytesRecv),
		float64(r.stats.CommFloorBytes))
	return nil
}

// plan sizes the schedule against the memory cap and the wire's
// payload bound. maxBandCols, when positive, narrows the column bands
// below what the cap allows — the cap-rejection retry path.
func plan(cfg Config, maxBandCols int) (*run, error) {
	rows, cols := cfg.Shape.Rows, cfg.Shape.Cols
	p := len(cfg.Workers)
	cap16 := cfg.MemCap / 16 // cap in complex128 samples

	// A worker band is rows x bandCols plus rows of column scratch:
	// 16*rows*(bandCols+1) bytes, bounded by the cap. Never wider than
	// the even split across workers.
	bandCols := int(cap16/int64(rows) - 1)
	if evenSplit := (cols + p - 1) / p; bandCols > evenSplit {
		bandCols = evenSplit
	}
	if maxBandCols > 0 && bandCols > maxBandCols {
		bandCols = maxBandCols
	}
	if bandCols < 1 {
		return nil, fmt.Errorf("pencil: cap %d cannot hold one %d-row column band", cfg.MemCap, rows)
	}

	// The coordinator streams chunkRows full rows at a time; its chunk
	// buffer and transpose shard each stay under half the cap, and one
	// chunk must fit a wire frame.
	chunkRows := int(cap16 / 2 / int64(cols))
	if maxFrame := (wire.MaxPayload - wire.PencilHdrSize) / (16 * cols); chunkRows > maxFrame {
		chunkRows = maxFrame
	}
	if chunkRows > rows {
		chunkRows = rows
	}
	// A 3D "row" is a whole x-plane and is never split mid-plane — the
	// flattened view already makes each row one plane, so chunking at
	// row granularity preserves plane alignment.
	if chunkRows < 1 {
		return nil, fmt.Errorf("pencil: cap %d cannot stream one %d-sample row", cfg.MemCap, cols)
	}

	bands := (cols + bandCols - 1) / bandCols
	waves := (bands + p - 1) / p
	return &run{
		cfg:       cfg,
		rows:      rows,
		cols:      cols,
		chunkRows: chunkRows,
		bandCols:  bandCols,
		bands:     bands,
		waves:     waves,
		chunk:     make([]complex128, chunkRows*cols),
		shard:     make([]complex128, chunkRows*bandCols),
	}, nil
}

// band is one open column band during a wave.
type band struct {
	job   uint64
	owner string
	colLo int
	colN  int
}

// call sends one sub-operation, threading the byte accounting into the
// run's span tree, stats and metrics at the same points with the same
// values, so span rollups reconcile exactly with the metrics deltas.
// The communication floor accrues the shard samples actually moved over
// the wire (sent or received on a remote call) — the bytes the
// transpose must cross the bisection with; headers and sub-headers are
// overhead above the floor, which keeps achieved/floor >= 1.
func (r *run) call(ctx context.Context, stage, peer string, req, resp *wire.PencilOp) error {
	sp := obs.StartChild(ctx, "pencil.rpc").SetCat(obs.CatCluster).
		SetDetail(stage + " " + peer)
	sent, recv, err := r.cfg.Transport.Call(ctx, peer, req, resp)
	sp.AddBytes(sent, recv)
	sp.End()
	r.stats.RPCs++
	var floor int64
	if sent > 0 {
		floor += 16 * int64(len(req.Data))
	}
	if recv > 0 {
		floor += 16 * int64(len(resp.Data))
	}
	r.stats.WireBytesSent += sent
	r.stats.WireBytesRecv += recv
	r.stats.CommFloorBytes += floor
	r.cfg.Metrics.countRPC(req.Sub)
	r.cfg.Metrics.addWire(sent, recv, floor)
	if err != nil {
		return fmt.Errorf("pencil: %s on %s: %w", stage, peer, err)
	}
	return nil
}

// header builds the common sub-header for this run.
func (r *run) header(sub uint8) wire.PencilOp {
	op := wire.PencilOp{
		Sub:     sub,
		Dims:    uint8(r.cfg.Shape.Dims()),
		Rows:    uint32(r.rows),
		Cols:    uint32(r.cols),
		Inverse: r.cfg.Inverse,
	}
	if r.cfg.Shape.PlaneRows > 0 {
		op.PlaneRows = uint32(r.cfg.Shape.PlaneRows)
	}
	return op
}

// execute runs the waves. Within each wave: open the wave's bands,
// stream every slab through its owner's row transform and deposit the
// transposed shards (the distributed transpose), run the column FFTs,
// gather the bands into the sink, close. The gather for a wave starts
// only after every column FFT of that wave succeeded, so a mid-wave
// failure leaves the sink untouched by that wave; earlier waves cover
// disjoint columns and were complete. A failed run therefore never
// interleaves partial new data into cells a retry would also write.
func (r *run) execute(ctx context.Context, src Source, sink Sink) error {
	workers := r.cfg.Workers
	for wave := 0; wave < r.waves; wave++ {
		if r.cfg.Metrics != nil {
			r.cfg.Metrics.waves.Add(1)
		}
		r.stats.Waves++
		var open []band
		waveErr := func() error {
			// Open this wave's bands, one per worker.
			for k := 0; k < len(workers); k++ {
				colLo := (wave*len(workers) + k) * r.bandCols
				if colLo >= r.cols {
					break
				}
				colN := r.cols - colLo
				if colN > r.bandCols {
					colN = r.bandCols
				}
				b := band{job: jobSeq.Add(1), owner: workers[k], colLo: colLo, colN: colN}
				op := r.header(wire.PencilOpen)
				op.Job = b.job
				op.ColLo = uint32(colLo)
				op.ColN = uint32(colN)
				var resp wire.PencilOp
				if err := r.call(ctx, "open", b.owner, &op, &resp); err != nil {
					return err
				}
				open = append(open, b)
			}
			// Scatter: stream each slab through its owner's row stage,
			// then deposit each band's columns with the band owner.
			slabs := SplitRows(r.rows, len(workers))
			for s, slab := range slabs {
				owner := workers[s]
				for lo := slab.Lo; lo < slab.Hi; lo += r.chunkRows {
					cn := slab.Hi - lo
					if cn > r.chunkRows {
						cn = r.chunkRows
					}
					chunk := r.chunk[:cn*r.cols]
					if err := src.ReadRows(lo, cn, chunk); err != nil {
						return fmt.Errorf("pencil: source rows [%d,%d): %w", lo, lo+cn, err)
					}
					op := r.header(wire.PencilRows)
					op.RowLo = uint32(lo)
					op.RowN = uint32(cn)
					op.Data = chunk
					var resp wire.PencilOp
					if err := r.call(ctx, "rows", owner, &op, &resp); err != nil {
						return err
					}
					if len(resp.Data) != cn*r.cols {
						return fmt.Errorf("pencil: rows on %s returned %d samples, want %d", owner, len(resp.Data), cn*r.cols)
					}
					transformed := resp.Data
					for _, b := range open {
						shard := r.shard[:cn*b.colN]
						for i := 0; i < cn; i++ {
							copy(shard[i*b.colN:(i+1)*b.colN], transformed[i*r.cols+b.colLo:i*r.cols+b.colLo+b.colN])
						}
						dep := r.header(wire.PencilDeposit)
						dep.Job = b.job
						dep.RowLo = uint32(lo)
						dep.RowN = uint32(cn)
						dep.ColLo = uint32(b.colLo)
						dep.ColN = uint32(b.colN)
						dep.Data = shard
						var dresp wire.PencilOp
						if err := r.call(ctx, "deposit", b.owner, &dep, &dresp); err != nil {
							return err
						}
					}
				}
			}
			// Column FFTs over every band of the wave.
			for _, b := range open {
				op := r.header(wire.PencilColFFT)
				op.Job = b.job
				op.ColLo = uint32(b.colLo)
				op.ColN = uint32(b.colN)
				var resp wire.PencilOp
				if err := r.call(ctx, "colfft", b.owner, &op, &resp); err != nil {
					return err
				}
			}
			// Gather the finished bands into the sink.
			for _, b := range open {
				for lo := 0; lo < r.rows; lo += r.chunkRows {
					cn := r.rows - lo
					if cn > r.chunkRows {
						cn = r.chunkRows
					}
					op := r.header(wire.PencilRead)
					op.Job = b.job
					op.RowLo = uint32(lo)
					op.RowN = uint32(cn)
					op.ColLo = uint32(b.colLo)
					op.ColN = uint32(b.colN)
					var resp wire.PencilOp
					if err := r.call(ctx, "read", b.owner, &op, &resp); err != nil {
						return err
					}
					if len(resp.Data) != cn*b.colN {
						return fmt.Errorf("pencil: read on %s returned %d samples, want %d", b.owner, len(resp.Data), cn*b.colN)
					}
					if err := sink.WriteBand(lo, cn, b.colLo, b.colN, resp.Data); err != nil {
						return fmt.Errorf("pencil: sink band [%d,%d)x[%d,%d): %w", lo, lo+cn, b.colLo, b.colLo+b.colN, err)
					}
				}
			}
			// Close the wave's bands.
			for i := len(open) - 1; i >= 0; i-- {
				b := open[i]
				op := r.header(wire.PencilClose)
				op.Job = b.job
				var resp wire.PencilOp
				if err := r.call(ctx, "close", b.owner, &op, &resp); err != nil {
					return err
				}
				open = open[:i]
			}
			return nil
		}()
		if waveErr != nil {
			r.abandon(open)
			return waveErr
		}
	}
	return nil
}

// abandon best-effort-closes bands after a failure so worker memory
// frees now instead of at TTL expiry. It runs on a detached short
// deadline: the original context may already be canceled, and a worker
// that died ignores us either way.
func (r *run) abandon(open []band) {
	if len(open) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, b := range open {
		op := r.header(wire.PencilClose)
		op.Job = b.job
		var resp wire.PencilOp
		// Ignore errors: TTL expiry is the backstop.
		_ = r.call(ctx, "close", b.owner, &op, &resp)
	}
}

// RowRange is one worker's contiguous slab [Lo, Hi).
type RowRange struct{ Lo, Hi int }

// SplitRows divides rows into p contiguous near-even slabs, the first
// rows%p slabs one row taller. Workers beyond rows get empty slabs.
func SplitRows(rows, p int) []RowRange {
	out := make([]RowRange, p)
	base, extra := rows/p, rows%p
	lo := 0
	for i := range out {
		n := base
		if i < extra {
			n++
		}
		out[i] = RowRange{Lo: lo, Hi: lo + n}
		lo += n
	}
	return out
}
