package pencil

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/cluster/wire"
)

// LocalTransport serves pencil sub-operations from in-process workers —
// the single-node serving path (one worker, no cluster) and the test
// and bench harness (several named workers standing in for nodes).
//
// With Loopback set every call round-trips through the real wire codec
// and reports whole-frame byte counts, exactly as a TCP transport
// would: tests exercise the encode/decode path and the byte accounting
// without sockets. Without Loopback calls dispatch directly and report
// zero bytes — nothing crossed a wire, and the comm floor stays zero to
// match.
type LocalTransport struct {
	Workers  map[string]*Worker
	Loopback bool

	ids atomic.Uint64
}

// NewLocalTransport builds a transport over named in-process workers.
func NewLocalTransport(loopback bool, workers map[string]*Worker) *LocalTransport {
	return &LocalTransport{Workers: workers, Loopback: loopback}
}

// Call implements Transport.
func (t *LocalTransport) Call(ctx context.Context, peer string, req, resp *wire.PencilOp) (sent, recv int64, err error) {
	w, ok := t.Workers[peer]
	if !ok {
		return 0, 0, fmt.Errorf("pencil: no local worker %q", peer)
	}
	if !t.Loopback {
		return 0, 0, w.ServePencil(ctx, req, resp)
	}
	id := t.ids.Add(1)
	frame := wire.AppendPencilReq(nil, id, req)
	h, err := wire.ParseHeader(frame)
	if err != nil {
		return 0, 0, err
	}
	var decoded wire.PencilOp
	if err := wire.ParsePencilReq(h, frame[wire.HeaderSize:], &decoded); err != nil {
		return 0, 0, err
	}
	var out wire.PencilOp
	var respFrame []byte
	if serveErr := w.ServePencil(ctx, &decoded, &out); serveErr != nil {
		respFrame = wire.AppendPencilErr(nil, id, serveErr.Error())
	} else {
		respFrame = wire.AppendPencilOK(nil, id, &out)
	}
	sent = int64(len(frame))
	recv = int64(len(respFrame))
	rh, err := wire.ParseHeader(respFrame)
	if err != nil {
		return sent, recv, err
	}
	remoteErr, err := wire.ParsePencilResp(rh, respFrame[wire.HeaderSize:], resp)
	if err != nil {
		return sent, recv, err
	}
	if remoteErr != "" {
		return sent, recv, errors.New(remoteErr)
	}
	return sent, recv, nil
}
