// Package banyan models the multistage interconnection networks the
// paper contrasts with hypermeshes: the Omega (shuffle-exchange) network
// of log2(N) stages of 2x2 switches — topologically the SW-banyan whose
// graph is the FFT flow graph of Fig. 3.
//
// An Omega network realizes a permutation in one pass only if the
// destination-tag paths of all N packets are link-disjoint; the paper's
// §II observation is that a hypermesh realizes every Omega and
// Omega-inverse admissible permutation in one pass *and* every other
// permutation in at most three, while the Omega network blocks (the
// FFT's bit-reversal being the classic inadmissible example).
package banyan

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/permute"
)

// Omega is an N-input, N-output Omega network with log2(N) stages.
type Omega struct {
	n      int
	stages int
}

// NewOmega builds an Omega network for n = 2^k ports.
func NewOmega(n int) (*Omega, error) {
	if !bits.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("banyan: Omega size %d is not a power of two >= 2", n)
	}
	return &Omega{n: n, stages: bits.Log2(n)}, nil
}

// Ports returns N.
func (o *Omega) Ports() int { return o.n }

// Stages returns log2(N).
func (o *Omega) Stages() int { return o.stages }

// PathPositions returns the wire position of a packet from input src to
// output dst after every stage: positions[0] is the input port and
// positions[stages] is the output port. Destination-tag (self-routing):
// entering stage s, the wiring perfect-shuffles the position, then the
// switch sets the low bit to destination bit stages-1-s.
func (o *Omega) PathPositions(src, dst int) []int {
	if src < 0 || src >= o.n || dst < 0 || dst >= o.n {
		panic(fmt.Sprintf("banyan: port out of range: src %d dst %d", src, dst))
	}
	pos := src
	out := make([]int, o.stages+1)
	out[0] = pos
	for s := 0; s < o.stages; s++ {
		pos = bits.PerfectShuffle(pos, o.stages)
		pos = bits.SetBit(pos, 0, bits.Bit(dst, o.stages-1-s))
		out[s+1] = pos
	}
	return out
}

// Result reports the admissibility check of one permutation.
type Result struct {
	// Passable is true when all N paths are wire-disjoint at every
	// stage: the permutation routes in a single pass.
	Passable bool
	// Conflicts is the total number of wire collisions summed over
	// stages (0 when Passable).
	Conflicts int
	// ConflictsPerStage breaks Conflicts down by stage (index 1 =
	// after the first stage's switches; index 0 is always 0 because
	// inputs are distinct).
	ConflictsPerStage []int
}

// Check runs destination-tag routing for permutation p and reports
// whether the Omega network can realize it without blocking.
func (o *Omega) Check(p permute.Permutation) (*Result, error) {
	if len(p) != o.n {
		return nil, fmt.Errorf("banyan: permutation size %d != %d ports", len(p), o.n)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("banyan: %w", err)
	}
	res := &Result{Passable: true, ConflictsPerStage: make([]int, o.stages+1)}
	occupied := make([]int, o.n) // stamp: last stage the wire was claimed
	for i := range occupied {
		occupied[i] = -1
	}
	// Positions of all packets, advanced stage by stage.
	pos := make([]int, o.n)
	for src := range pos {
		pos[src] = src
	}
	for s := 0; s < o.stages; s++ {
		for src := range pos {
			q := bits.PerfectShuffle(pos[src], o.stages)
			q = bits.SetBit(q, 0, bits.Bit(p[src], o.stages-1-s))
			pos[src] = q
		}
		for _, q := range pos {
			if occupied[q] == s {
				res.Conflicts++
				res.ConflictsPerStage[s+1]++
				res.Passable = false
			}
			occupied[q] = s
		}
	}
	return res, nil
}

// Passable reports whether the Omega network realizes p in one pass.
func (o *Omega) Passable(p permute.Permutation) (bool, error) {
	res, err := o.Check(p)
	if err != nil {
		return false, err
	}
	return res.Passable, nil
}

// PassableFraction estimates, over the given sample of permutations,
// the fraction an Omega network can realize in one pass; random
// permutations almost never pass for large N (there are (N/2)^... far
// fewer admissible settings than N! permutations), which is why
// multistage machines need multiple passes or sorting networks.
func (o *Omega) PassableFraction(perms []permute.Permutation) (float64, error) {
	if len(perms) == 0 {
		return 0, fmt.Errorf("banyan: empty sample")
	}
	pass := 0
	for _, p := range perms {
		ok, err := o.Passable(p)
		if err != nil {
			return 0, err
		}
		if ok {
			pass++
		}
	}
	return float64(pass) / float64(len(perms)), nil
}
