package banyan

import (
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/clos"
	"repro/internal/permute"
)

func TestNewOmegaValidates(t *testing.T) {
	if _, err := NewOmega(12); err == nil {
		t.Fatal("size 12 accepted")
	}
	if _, err := NewOmega(1); err == nil {
		t.Fatal("size 1 accepted")
	}
	o, err := NewOmega(16)
	if err != nil {
		t.Fatal(err)
	}
	if o.Ports() != 16 || o.Stages() != 4 {
		t.Fatalf("shape %d/%d", o.Ports(), o.Stages())
	}
}

func TestPathPositionsEndpoints(t *testing.T) {
	o, _ := NewOmega(32)
	for src := 0; src < 32; src += 5 {
		for dst := 0; dst < 32; dst += 3 {
			path := o.PathPositions(src, dst)
			if path[0] != src {
				t.Fatalf("path starts at %d", path[0])
			}
			if path[len(path)-1] != dst {
				t.Fatalf("path from %d to %d ends at %d", src, dst, path[len(path)-1])
			}
		}
	}
}

func TestIdentityPasses(t *testing.T) {
	o, _ := NewOmega(64)
	ok, err := o.Passable(permute.Identity(64))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("identity blocked")
	}
}

func TestPerfectShuffleBlocks(t *testing.T) {
	// Counter-intuitively, the Omega network cannot realize the perfect
	// shuffle — its own wiring pattern — as a routed permutation in one
	// pass: at N = 4 packets from inputs 0 and 2 already collide after
	// the first stage. (The hypermesh routes it in <= 3 steps like any
	// other permutation; see TestHypermeshCoversWhatOmegaCannot.)
	o, _ := NewOmega(64)
	ok, err := o.Passable(permute.PerfectShuffle(64))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("perfect shuffle unexpectedly passed")
	}
}

func TestButterflyExchangesPass(t *testing.T) {
	// The FFT's stage permutations (XOR with a power of two) are
	// admissible: every switch sees its two packets request opposite
	// outputs.
	o, _ := NewOmega(64)
	for s := 0; s < 6; s++ {
		ok, err := o.Passable(permute.ButterflyExchange(64, s))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("butterfly exchange of bit %d blocked", s)
		}
	}
}

func TestCyclicShiftsPass(t *testing.T) {
	// Uniform shifts are the classic Omega-admissible family.
	o, _ := NewOmega(64)
	for _, k := range []int{1, 2, 7, 31, 63} {
		ok, err := o.Passable(permute.CyclicShift(64, k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("cyclic shift by %d blocked", k)
		}
	}
}

func TestBitReversalBlocks(t *testing.T) {
	// The FFT's terminal permutation does NOT pass an Omega network in
	// one pass (for N >= 8) — the contrast that §III.C exploits: the
	// hypermesh needs at most 3 steps for it.
	for _, n := range []int{8, 16, 64, 256, 4096} {
		o, _ := NewOmega(n)
		res, err := o.Check(permute.BitReversal(n))
		if err != nil {
			t.Fatal(err)
		}
		if res.Passable {
			t.Fatalf("n=%d: bit reversal passed the Omega network", n)
		}
		if res.Conflicts == 0 {
			t.Fatalf("n=%d: inadmissible but zero conflicts", n)
		}
	}
}

func TestTransposeBlocks(t *testing.T) {
	o, _ := NewOmega(64)
	ok, err := o.Passable(permute.Transpose(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("matrix transpose passed (it is the classic blocker)")
	}
}

func TestRandomPermutationsMostlyBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var perms []permute.Permutation
	for i := 0; i < 200; i++ {
		perms = append(perms, permute.Random(256, rng))
	}
	o, _ := NewOmega(256)
	frac, err := o.PassableFraction(perms)
	if err != nil {
		t.Fatal(err)
	}
	// Admissible settings are 2^(N/2*logN) = 2^1024 out of 256! ~ 2^1684:
	// a random permutation passes with probability ~ 2^-660.
	//fftlint:ignore floatcmp frac is a count divided by a count; zero passes means exactly zero
	if frac != 0 {
		t.Fatalf("%.2f of random permutations passed; expected none", frac)
	}
}

func TestConflictsPerStageSumsToConflicts(t *testing.T) {
	o, _ := NewOmega(64)
	res, err := o.Check(permute.BitReversal(64))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range res.ConflictsPerStage {
		sum += c
	}
	if sum != res.Conflicts {
		t.Fatalf("per-stage sum %d != total %d", sum, res.Conflicts)
	}
	if res.ConflictsPerStage[0] != 0 {
		t.Fatal("stage 0 cannot conflict")
	}
}

func TestCheckValidates(t *testing.T) {
	o, _ := NewOmega(16)
	if _, err := o.Check(permute.Identity(8)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := o.Check(permute.Permutation{0, 0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}); err == nil {
		t.Fatal("invalid permutation accepted")
	}
	if _, err := o.PassableFraction(nil); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestHypermeshCoversWhatOmegaCannot(t *testing.T) {
	// The paper's contrast, demonstrated end to end: permutations the
	// Omega network blocks still route on the 2D hypermesh in <= 3 net
	// steps via the Clos decomposition.
	rng := rand.New(rand.NewSource(78))
	o, _ := NewOmega(64)
	blocked := 0
	for trial := 0; trial < 20; trial++ {
		p := permute.Random(64, rng)
		ok, err := o.Passable(p)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			continue
		}
		blocked++
		ph, err := clos.Decompose(8, p)
		if err != nil {
			t.Fatal(err)
		}
		if ph.Steps() > 3 {
			t.Fatalf("hypermesh needed %d steps", ph.Steps())
		}
		if !ph.Compose().Equal(p) {
			t.Fatal("decomposition wrong")
		}
	}
	if blocked == 0 {
		t.Fatal("no blocked permutations sampled")
	}
}

func TestPathPositionsSingleSwitchSemantics(t *testing.T) {
	// After each stage, the packet's position has its low bit equal to
	// the corresponding destination bit.
	o, _ := NewOmega(32)
	src, dst := 13, 22
	path := o.PathPositions(src, dst)
	for s := 1; s <= o.Stages(); s++ {
		want := bits.Bit(dst, o.Stages()-s)
		if bits.Bit(path[s], 0) != want {
			t.Fatalf("stage %d low bit %d, want %d", s, bits.Bit(path[s], 0), want)
		}
	}
}

func BenchmarkOmegaCheck4096(b *testing.B) {
	o, _ := NewOmega(4096)
	p := permute.BitReversal(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Check(p); err != nil {
			b.Fatal(err)
		}
	}
}
