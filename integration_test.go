package hypermeshfft

// End-to-end consistency tests: the analytical model, the simulator and
// the serial numerics must all tell one story. These are the
// repository's "does the whole reproduction hang together" checks.

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/fft"
	"repro/internal/hardware"
	"repro/internal/netsim"
	"repro/internal/parfft"
	"repro/internal/perfmodel"
	"repro/internal/permute"
	"repro/internal/topology"
)

// TestEndToEndModelMatchesSimulation pins the central claim: the step
// counts the closed-form model prices are exactly the step counts the
// simulator measures for verified FFT schedules (hypercube and
// hypermesh; the mesh's reversal is a lower bound, checked as such).
func TestEndToEndModelMatchesSimulation(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5} { // N = 16 .. 1024
		n := 1 << uint(2*k)
		side := 1 << uint(k)
		x := randomSignal(n, int64(n))
		// The simulated machines execute the paper's radix-2 DIF schedule,
		// so compare against TransformDIF — the schedule-exact reference —
		// not Transform, which is free to pick a faster serial kernel.
		want := make([]complex128, n)
		fft.MustPlan(n).TransformDIF(want, x)

		cubeModel, err := perfmodel.HypercubeFFTSteps(n)
		if err != nil {
			t.Fatal(err)
		}
		cube, _ := netsim.NewHypercube[complex128](2*k, netsim.Config{})
		cr, err := parfft.Run(cube, x, parfft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		//fftlint:ignore floatcmp the simulated machine executes the host plan's exact butterfly/twiddle schedule; bit-equality pins schedule fidelity
		if d := fft.MaxAbsDiff(cr.Output, want); d != 0 {
			t.Fatalf("N=%d: hypercube output differs by %g", n, d)
		}
		if cr.ButterflySteps != cubeModel.Butterfly {
			t.Fatalf("N=%d: hypercube butterfly %d != model %d", n, cr.ButterflySteps, cubeModel.Butterfly)
		}
		if cr.BitReversalSteps > cubeModel.BitReversal {
			t.Fatalf("N=%d: hypercube reversal %d > model bound %d", n, cr.BitReversalSteps, cubeModel.BitReversal)
		}

		hmModel, _ := perfmodel.HypermeshFFTSteps(n)
		hm, _ := netsim.NewHypermesh[complex128](side, 2, netsim.Config{})
		hr, err := parfft.Run(hm, x, parfft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		//fftlint:ignore floatcmp the simulated machine executes the host plan's exact butterfly/twiddle schedule; bit-equality pins schedule fidelity
		if d := fft.MaxAbsDiff(hr.Output, want); d != 0 {
			t.Fatalf("N=%d: hypermesh output differs by %g", n, d)
		}
		if hr.ButterflySteps != hmModel.Butterfly {
			t.Fatalf("N=%d: hypermesh butterfly %d != model %d", n, hr.ButterflySteps, hmModel.Butterfly)
		}
		if hr.BitReversalSteps > hmModel.BitReversal {
			t.Fatalf("N=%d: hypermesh reversal %d > bound %d", n, hr.BitReversalSteps, hmModel.BitReversal)
		}

		meshModel, _ := perfmodel.MeshFFTSteps(n)
		mesh, _ := netsim.NewMesh[complex128](side, true, netsim.Config{})
		mr, err := parfft.Run(mesh, x, parfft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		//fftlint:ignore floatcmp the simulated machine executes the host plan's exact butterfly/twiddle schedule; bit-equality pins schedule fidelity
		if d := fft.MaxAbsDiff(mr.Output, want); d != 0 {
			t.Fatalf("N=%d: mesh output differs by %g", n, d)
		}
		if mr.ButterflySteps != meshModel.Butterfly {
			t.Fatalf("N=%d: mesh butterfly %d != model %d", n, mr.ButterflySteps, meshModel.Butterfly)
		}
		if mr.BitReversalSteps < meshModel.BitReversal {
			t.Fatalf("N=%d: mesh reversal %d below the model's lower bound %d",
				n, mr.BitReversalSteps, meshModel.BitReversal)
		}
	}
}

// TestEndToEndCongestionExplainsMeshReversal ties §V to the measured
// behaviour: the congestion/bisection lower bound for the mesh's bit
// reversal is respected by the simulator's measured makespan.
func TestEndToEndCongestionExplainsMeshReversal(t *testing.T) {
	side := 16
	n := side * side
	topo := topology.NewMesh2D(side, true)
	res, err := congest.Analyze(topo, permute.BitReversal(n))
	if err != nil {
		t.Fatal(err)
	}
	lb := res.StepLowerBound(topo.BisectionLinks())

	mesh, _ := netsim.NewMesh[complex128](side, true, netsim.Config{})
	x := randomSignal(n, 7)
	mr, err := parfft.Run(mesh, x, parfft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mr.BitReversalSteps < lb {
		t.Fatalf("measured reversal %d below congestion bound %d", mr.BitReversalSteps, lb)
	}
}

// TestEndToEndSpeedupFromMeasuredSteps recomputes the §IV.A speedups
// from *measured* steps (instead of the model's) and confirms the
// conclusion direction survives: the hypermesh still wins by >20x.
func TestEndToEndSpeedupFromMeasuredSteps(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	n := 4096
	x := randomSignal(n, 8)
	mesh, _ := netsim.NewMesh[complex128](64, true, netsim.Config{})
	cube, _ := netsim.NewHypercube[complex128](12, netsim.Config{})
	hm, _ := netsim.NewHypermesh[complex128](64, 2, netsim.Config{})
	mr, err := parfft.Run(mesh, x, parfft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := parfft.Run(cube, x, parfft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := parfft.Run(hm, x, parfft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stepTime := func(topo topology.Topology) float64 {
		m := hardware.NewModel(topo)
		st, err := m.StepTime()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	meshT := float64(mr.TotalSteps()) * stepTime(topology.NewMesh2D(64, true))
	cubeT := float64(cr.TotalSteps()) * stepTime(topology.NewHypercubeForNodes(n))
	hmT := float64(hr.TotalSteps()) * stepTime(topology.NewHypermesh(64, 2))
	if meshT/hmT < 20 {
		t.Fatalf("measured-step speedup vs mesh = %v; conclusion should survive", meshT/hmT)
	}
	if cubeT/hmT < 8 {
		t.Fatalf("measured-step speedup vs hypercube = %v", cubeT/hmT)
	}
}

// TestEndToEndFourEnginesAgree cross-checks four independent FFT
// implementations on one input: the planned serial transform, the
// flow-graph evaluation, the distributed machine run and the BSP actor
// run.
func TestEndToEndFourEnginesAgree(t *testing.T) {
	n := 256
	x := randomSignal(n, 9)
	serial := MustPlan(n).Forward(x)

	g, err := NewFlowGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	graph := g.Evaluate(x)

	hm, _ := netsim.NewHypermesh[complex128](16, 2, netsim.Config{})
	dist, err := parfft.Run(hm, x, parfft.Options{})
	if err != nil {
		t.Fatal(err)
	}

	actor, err := parfft.RunActor(x, 0)
	if err != nil {
		t.Fatal(err)
	}

	for name, got := range map[string][]complex128{
		"flow graph": graph, "distributed": dist.Output, "actor": actor,
	} {
		if d := fft.MaxAbsDiff(got, serial); d > 1e-9*float64(n) {
			t.Fatalf("%s differs from serial by %g", name, d)
		}
	}
}

func randomPermSeeded(n int, seed int64) permute.Permutation {
	return permute.Random(n, rand.New(rand.NewSource(seed)))
}

// TestEndToEndEveryRouterDeliversSamePermutation drives one random
// permutation through every router in the repository and checks they
// all implement the same semantics.
func TestEndToEndEveryRouterDeliversSamePermutation(t *testing.T) {
	p := randomPermSeeded(64, 10)
	rng := rand.New(rand.NewSource(11))

	check := func(name string, vals []int) {
		t.Helper()
		for src, dst := range p {
			if vals[dst] != src {
				t.Fatalf("%s: node %d holds %d, want %d", name, dst, vals[dst], src)
			}
		}
	}

	mesh, _ := netsim.NewMesh[int](8, true, netsim.Config{})
	for i := range mesh.Values() {
		mesh.Values()[i] = i
	}
	if _, err := mesh.Route(p); err != nil {
		t.Fatal(err)
	}
	check("mesh store-and-forward", mesh.Values())

	cube, _ := netsim.NewHypercube[int](6, netsim.Config{})
	for i := range cube.Values() {
		cube.Values()[i] = i
	}
	if _, err := cube.Route(p); err != nil {
		t.Fatal(err)
	}
	check("hypercube greedy", cube.Values())

	cubeV, _ := netsim.NewHypercube[int](6, netsim.Config{})
	for i := range cubeV.Values() {
		cubeV.Values()[i] = i
	}
	if _, err := cubeV.RouteValiant(p, rng); err != nil {
		t.Fatal(err)
	}
	check("hypercube valiant", cubeV.Values())

	cubeA, _ := netsim.NewHypercube[int](6, netsim.Config{})
	for i := range cubeA.Values() {
		cubeA.Values()[i] = i
	}
	if _, err := cubeA.RouteAdaptive(p, rng); err != nil {
		t.Fatal(err)
	}
	check("hypercube adaptive", cubeA.Values())

	hm, _ := netsim.NewHypermesh[int](8, 2, netsim.Config{})
	for i := range hm.Values() {
		hm.Values()[i] = i
	}
	if _, err := hm.Route(p); err != nil {
		t.Fatal(err)
	}
	check("hypermesh clos", hm.Values())
}
