package hypermeshfft_test

import (
	"fmt"
	"math"
	"math/cmplx"

	hypermeshfft "repro"
)

// ExampleMustPlan demonstrates the serial FFT on a pure tone: all the
// energy lands in one bin.
func ExampleMustPlan() {
	const n = 64
	plan := hypermeshfft.MustPlan(n)
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*5*float64(i)/n))
	}
	spec := plan.Forward(x)
	peak := 0
	for k := range spec {
		if cmplx.Abs(spec[k]) > cmplx.Abs(spec[peak]) {
			peak = k
		}
	}
	fmt.Printf("peak bin %d, magnitude %.0f\n", peak, cmplx.Abs(spec[peak]))
	// Output: peak bin 5, magnitude 64
}

// ExampleDistributedFFT runs the paper's headline experiment at a small
// size: the butterfly ranks cost log N steps and the bit reversal at
// most 3 on a 2D hypermesh.
func ExampleDistributedFFT() {
	m, _ := hypermeshfft.NewHypermeshMachine(8, 2) // 64 PEs
	x := make([]complex128, 64)
	x[1] = 1
	res, _ := hypermeshfft.DistributedFFT(m, x, hypermeshfft.FFTOptions{})
	fmt.Printf("butterfly steps: %d\n", res.ButterflySteps)
	fmt.Printf("bit-reversal steps <= 3: %v\n", res.BitReversalSteps <= 3)
	// Output:
	// butterfly steps: 6
	// bit-reversal steps <= 3: true
}

// ExampleRunCaseStudy reproduces §IV.A's headline speedups.
func ExampleRunCaseStudy() {
	cs, _ := hypermeshfft.RunCaseStudy(hypermeshfft.CaseStudyOptions{})
	fmt.Printf("hypermesh vs mesh:      %.1fx\n", cs.SpeedupVsMesh)
	fmt.Printf("hypermesh vs hypercube: %.1fx\n", cs.SpeedupVsHypercube)
	// Output:
	// hypermesh vs mesh:      26.7x
	// hypermesh vs hypercube: 10.4x
}

// ExampleDecomposePermutation shows the 3-step rearrangeable routing
// behind the hypermesh's bit reversal.
func ExampleDecomposePermutation() {
	ph, _ := hypermeshfft.DecomposePermutation(8, hypermeshfft.BitReversal(64))
	fmt.Printf("phases needed: %d\n", ph.Steps())
	// Output: phases needed: 3
}

// ExampleBitonicSort sorts with Batcher's network.
func ExampleBitonicSort() {
	data := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	_ = hypermeshfft.BitonicSort(data)
	fmt.Println(data)
	// Output: [1 1 2 3 4 5 6 9]
}

// ExamplePolyMul multiplies polynomials via the FFT.
func ExamplePolyMul() {
	// (1 + x)^2 = 1 + 2x + x^2
	c, _ := hypermeshfft.PolyMul([]float64{1, 1}, []float64{1, 1})
	fmt.Printf("%.0f %.0f %.0f\n", c[0], c[1], c[2])
	// Output: 1 2 1
}

// ExampleNewOmegaNetwork shows the §II multistage contrast: the FFT's
// bit reversal blocks an Omega network in one pass, while the hypermesh
// routes it in at most three net steps.
func ExampleNewOmegaNetwork() {
	o, _ := hypermeshfft.NewOmegaNetwork(64)
	ok, _ := o.Passable(hypermeshfft.BitReversal(64))
	fmt.Printf("bit reversal passes Omega in one pass: %v\n", ok)
	ph, _ := hypermeshfft.DecomposePermutation(8, hypermeshfft.BitReversal(64))
	fmt.Printf("hypermesh routes it in %d steps\n", ph.Steps())
	// Output:
	// bit reversal passes Omega in one pass: false
	// hypermesh routes it in 3 steps
}
